// Package deltat implements SODA's reliable transport: an alternating-bit
// stop-and-wait protocol whose connection state is managed by the Delta-t
// rules (§5.2.2) — no explicit connection establishment, duplicate
// suppression via per-peer records, and record reclamation driven purely by
// timing bounds.
//
// Terminology follows the thesis: MPL is the maximum packet lifetime, R the
// maximum total time spent retransmitting a message, and A the maximum
// delay before acknowledging a packet. Δt = MPL + R + A. A connection
// record is discarded (and any sequence number accepted again) after
// silence of MPL + Δt; a crashed node stays off the network for 2·MPL + Δt
// before rejoining.
//
// The endpoint supports the piggybacking the thesis's chapter 5 measures:
//
//   - an acknowledgement may carry an upper-layer reply in its payload
//     (ACCEPT+ACK completing a PUT);
//   - a DATA frame may carry a piggybacked ACK for the reverse direction
//     (ACCEPT+DATA acknowledging the REQUEST; a new REQUEST acknowledging
//     the previous reply's data);
//   - acknowledgement of a delivered DATA frame can be withheld ("held")
//     for a bounded window so the upper layer may resolve it with a
//     piggyback, a BUSY, or an error.
package deltat

import (
	"fmt"
	"time"

	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/sortediter"
	"soda/internal/wire"
)

// Verdict is the upper layer's disposition of a delivered DATA frame.
type Verdict uint8

const (
	// VerdictAck acknowledges the frame, optionally with a reply payload.
	VerdictAck Verdict = iota + 1
	// VerdictBusy refuses the frame without consuming it; the sender
	// retries later at a reduced rate (§5.2.3).
	VerdictBusy
	// VerdictError consumes the frame and reports an error NACK.
	VerdictError
	// VerdictHold withholds the acknowledgement: the upper layer will
	// resolve it via ResolveHold or SendResolvingHold, or the endpoint
	// auto-resolves after HoldTimeout with ExpiryVerdict.
	VerdictHold
	// VerdictAckDeferred consumes the frame but defers the plain
	// acknowledgement for up to one ack-delay (A), hoping to piggyback
	// it on the next DATA frame transmitted toward the sender — the
	// "new REQUEST piggybacked on the ACK for the data" optimization of
	// §5.2.3. Kernel-level: it owes no upper-layer reply.
	VerdictAckDeferred
)

// Decision is returned by the OnData hook (and passed to ResolveHold).
type Decision struct {
	Verdict Verdict
	// Err is the error NACK code for VerdictError.
	Err frame.ErrCode
	// Reply is piggybacked on the ACK for VerdictAck.
	Reply []byte
	// HoldTimeout bounds a VerdictHold; zero means one ack-delay (A).
	// Negative means no automatic expiry: the upper layer owns the hold
	// and must eventually resolve it.
	HoldTimeout time.Duration
	// ExpiryVerdict is applied if a hold times out: VerdictAck sends a
	// plain ACK (the "made it to handler, not accepted yet" case);
	// VerdictBusy sends a BUSY NACK (the pipelined input-buffer case).
	ExpiryVerdict Verdict
}

// ResultKind classifies the outcome of a reliable Send.
type ResultKind uint8

const (
	// ResultAcked: the peer consumed the message; Reply holds any
	// payload piggybacked on the acknowledgement.
	ResultAcked ResultKind = iota + 1
	// ResultError: the peer consumed the message and reported Err.
	ResultError
	// ResultPeerDead: no response within MPL+Δt of retransmission; the
	// destination is reported dead (§5.2.2).
	ResultPeerDead
)

// Result reports the outcome of a reliable Send.
type Result struct {
	Kind  ResultKind
	Err   frame.ErrCode
	Reply []byte
}

// Costs models the per-frame CPU spent by the kernel processor, split into
// the buckets of the thesis's "Breakdown of Communications Overhead" table.
// Each component both delays processing in virtual time and accumulates
// into Totals.
type Costs struct {
	// ProtocolPerFrame is protocol processing charged on every frame
	// sent and received.
	ProtocolPerFrame time.Duration
	// ConnTimerPerFrame is connection-record upkeep charged on every
	// frame sent and received.
	ConnTimerPerFrame time.Duration
	// RetransTimer is charged when arming (DATA send) and clearing
	// (ACK/NACK receipt) the retransmission timer.
	RetransTimer time.Duration
	// CopyPerByte is the buffer copy cost, charged per payload byte on
	// DATA send and DATA delivery.
	CopyPerByte time.Duration
}

// CostTotals accumulates the cost buckets for the breakdown table.
type CostTotals struct {
	Protocol     time.Duration
	ConnTimer    time.Duration
	RetransTimer time.Duration
	Copy         time.Duration
	FramesSent   uint64
	FramesRecv   uint64
}

// EventKind discriminates transport observer events (see Event).
type EventKind uint8

const (
	// EvConnOpen: a connection record for the peer was created.
	EvConnOpen EventKind = iota + 1
	// EvConnExpire: the record's receive side lapsed after ConnLifetime
	// of silence (any sequence number is accepted again, §5.2.2).
	EvConnExpire
	// EvConnClose: the record was discarded (the peer was reported dead).
	EvConnClose
	// EvRetransmit: a retransmission timer re-sent the current DATA
	// frame; Seq is its sequence number, Attempt the transmission count
	// including this one.
	EvRetransmit
	// EvAckTx: a standalone acknowledgement frame was scheduled toward
	// the peer.
	EvAckTx
	// EvAckRx: an acknowledgement for the outstanding DATA frame was
	// consumed (the message completed).
	EvAckRx
	// EvPiggybackAck: an acknowledgement rode an outgoing DATA frame
	// instead of a standalone ACK (§5.2.3).
	EvPiggybackAck
	// EvPeerDead: the destination stayed silent past MPL+Δt; the current
	// message and everything queued behind it failed (§5.2.2).
	EvPeerDead
	// EvBusyRetry: a BUSY NACK parked the current message for the slower
	// busy-retry interval (§5.2.3).
	EvBusyRetry
	// EvWindowFill: a windowed send had to queue because Config.Window
	// messages toward the destination were already unacknowledged. Seq is
	// the message sequence the send will get; Attempt the window depth.
	EvWindowFill
	// EvCumAck: a cumulative fragment acknowledgement was transmitted
	// (standalone FRAGACK or piggybacked on a reverse FRAG); Seq is the
	// highest in-order fragment sequence acknowledged.
	EvCumAck
	// EvFragRetransmit: go-back-N recovery re-sent a FRAG frame; Seq is
	// its fragment sequence, Attempt the retransmission round.
	EvFragRetransmit
	// EvSelectiveRetransmit: selective-repeat recovery re-sent one
	// unacknowledged hole while withholding SACKed successors; Seq is the
	// fragment sequence, Attempt the recovery round (1 for a
	// fast retransmit triggered by duplicate cumulative acks).
	EvSelectiveRetransmit
	// EvSackTx: a cumulative fragment acknowledgement carried a SACK
	// bitmap reporting out-of-order fragments; Seq is the cumulative
	// point, Attempt the number of contiguous SACK blocks.
	EvSackTx
	// EvWindowIncrease: the AIMD controller grew the congestion window
	// after a clean window's worth of completions; Attempt is the new
	// cwnd (always <= the operator's Config.Window ceiling).
	EvWindowIncrease
	// EvWindowDecrease: the AIMD controller halved the congestion window
	// on a recovery-timer fire; Attempt is the new cwnd.
	EvWindowDecrease
)

func (k EventKind) String() string {
	switch k {
	case EvConnOpen:
		return "CONN_OPEN"
	case EvConnExpire:
		return "CONN_EXPIRE"
	case EvConnClose:
		return "CONN_CLOSE"
	case EvRetransmit:
		return "RETRANSMIT"
	case EvAckTx:
		return "ACK_TX"
	case EvAckRx:
		return "ACK_RX"
	case EvPiggybackAck:
		return "PIGGYBACK_ACK"
	case EvPeerDead:
		return "PEER_DEAD"
	case EvBusyRetry:
		return "BUSY_RETRY"
	case EvWindowFill:
		return "WINDOW_FILL"
	case EvCumAck:
		return "CUM_ACK"
	case EvFragRetransmit:
		return "FRAG_RETRANSMIT"
	case EvSelectiveRetransmit:
		return "SEL_RETRANSMIT"
	case EvSackTx:
		return "SACK_TX"
	case EvWindowIncrease:
		return "WINDOW_INC"
	case EvWindowDecrease:
		return "WINDOW_DEC"
	default:
		return "EV(?)"
	}
}

// Event is one entry of the transport's observer stream: the protocol
// machinery (retransmission, acknowledgement, connection-record lifecycle)
// that is invisible to the kernel observer above. Emitting it must never
// change protocol behavior; with no Observer installed no event is built.
//
// lint:event — construct only under a nil-consumer guard (obszerocost).
type Event struct {
	At   sim.Time
	Kind EventKind
	// Node is the endpoint the event happened on; Peer the other side.
	Node frame.MID
	Peer frame.MID
	// Seq is the sequence number concerned (retransmit/ack events).
	Seq uint8
	// Attempt is the transmission count for EvRetransmit (2 = first
	// retransmission).
	Attempt int
}

// RecoveryMode selects how the windowed engine (Config.Window > 1)
// recovers lost fragments.
type RecoveryMode uint8

const (
	// RecoverySelective is the default: the receiver buffers out-of-order
	// fragments and reports them in SACK bitmaps, the sender retransmits
	// only the holes (fast-retransmit on duplicate cumulative acks, timer
	// otherwise), and an AIMD controller adapts the effective window
	// below the operator's Config.Window ceiling.
	RecoverySelective RecoveryMode = iota
	// RecoveryGoBackN is the legacy engine: strict in-order acceptance,
	// cumulative acks only, full-pipeline retransmission on every
	// recovery-timer fire, fixed window.
	RecoveryGoBackN
)

func (m RecoveryMode) String() string {
	if m == RecoveryGoBackN {
		return "gobackn"
	}
	return "selective"
}

// Config sets protocol timing.
type Config struct {
	// MPL, R, A are the Delta-t bounds (§5.2.2).
	MPL time.Duration
	R   time.Duration
	A   time.Duration
	// RetransInterval is the base retransmission period; each attempt
	// multiplies it by RetransBackoff, and RetransJitter of random extra
	// delay avoids lockstep (§5.2.2).
	RetransInterval time.Duration
	RetransBackoff  float64
	RetransJitter   time.Duration
	// BusyRetryInterval is the (slightly slower) retry period after a
	// BUSY NACK (§5.2.3).
	BusyRetryInterval time.Duration
	// LineBytesPerSec estimates the medium's rate so retransmission
	// waits scale with frame size (a 2000-byte frame takes 16 ms on the
	// thesis's 1 Mbit Megalink — longer than the base interval).
	LineBytesPerSec int64
	// Window is the sliding-window depth in messages: how many reliable
	// messages may be unacknowledged toward one destination at once.
	// Values <= 1 select the paper-faithful alternating-bit stop-and-wait
	// path (§5.2.2), bit-identical to the pre-window transport; values
	// > 1 route all reliable traffic through the windowed engine with
	// message fragmentation (window.go, DESIGN.md §11).
	Window int
	// FragSize caps the payload bytes of one FRAG frame in windowed
	// mode; <= 0 means DefaultFragSize. Window=1 never fragments.
	FragSize int
	// Recovery selects the windowed engine's loss-recovery strategy. The
	// zero value is RecoverySelective (SACK + AIMD, DESIGN.md §12);
	// RecoveryGoBackN keeps the PR-5 cumulative-only engine with a fixed
	// window, retained as the baseline the lossywindow benchmark compares
	// against. Window<=1 ignores this field entirely.
	Recovery RecoveryMode
	Costs    Costs
	// Observer, when non-nil, receives the endpoint's protocol event
	// stream (see Event). It must never influence protocol behavior; the
	// soda facade fans one observer out to every node.
	Observer func(Event)
}

// DefaultConfig returns timing roughly calibrated to the thesis's
// PDP-11/Megalink implementation.
func DefaultConfig() Config {
	return Config{
		MPL:               20 * time.Millisecond,
		R:                 100 * time.Millisecond,
		A:                 2 * time.Millisecond,
		RetransInterval:   12 * time.Millisecond,
		RetransBackoff:    1.5,
		RetransJitter:     2 * time.Millisecond,
		BusyRetryInterval: 4 * time.Millisecond,
		LineBytesPerSec:   125_000,
		Costs: Costs{
			ProtocolPerFrame:  500 * time.Microsecond,
			ConnTimerPerFrame: 250 * time.Microsecond,
			RetransTimer:      350 * time.Microsecond,
			CopyPerByte:       3 * time.Microsecond,
		},
	}
}

// Delta returns Δt = MPL + R + A.
func (c Config) Delta() time.Duration { return c.MPL + c.R + c.A }

// ConnLifetime is the silence interval after which a connection record is
// discarded and any sequence number is accepted again: MPL + Δt.
func (c Config) ConnLifetime() time.Duration { return c.MPL + c.Delta() }

// DeadAfter is the no-response interval after which the destination is
// reported dead: MPL + Δt (§5.2.2).
func (c Config) DeadAfter() time.Duration { return c.MPL + c.Delta() }

// QuietPeriod is how long a recovering node must stay silent before
// rejoining the network: 2·MPL + Δt (§5.2.2).
func (c Config) QuietPeriod() time.Duration { return 2*c.MPL + c.Delta() }

// Hooks are the upper layer's callbacks. All run in simulation context.
type Hooks struct {
	// OnData is invoked for each newly delivered DATA payload and must
	// return the disposition.
	OnData func(src frame.MID, payload []byte) Decision
	// OnDatagram is invoked for unreliable datagrams (may be nil).
	OnDatagram func(src frame.MID, payload []byte)
	// OnHoldExpired is invoked when a hold auto-resolves (may be nil).
	OnHoldExpired func(src frame.MID, applied Verdict)
}

type cachedReplyKind uint8

const (
	replyNone cachedReplyKind = iota // resolved by piggyback; nothing to replay
	replyAck
	replyNack
)

type cachedReply struct {
	kind    cachedReplyKind
	err     frame.ErrCode
	payload []byte
}

// conn is the per-peer Delta-t connection record (both directions).
type conn struct {
	sendSeq   uint8
	recvValid bool
	recvSeq   uint8 // last delivered sequence number
	cached    cachedReply
	lastHeard sim.Time
}

// held is a delivered-but-unacknowledged DATA frame.
type held struct {
	seq    uint8
	expiry Verdict
	gen    int
}

// deferredAck is a plain acknowledgement awaiting a piggyback opportunity.
type deferredAck struct {
	seq uint8
	gen int
}

// sendReq is one reliable message queued toward a destination.
type sendReq struct {
	payload []byte
	retrans []byte // used for retransmissions when non-nil (§5.2.3)
	cb      func(Result)
	// urgent messages (kernel replies: accepts, re-sent accept data)
	// jump ahead of queued requests and preempt a busy-retrying one —
	// an ACCEPT can never be prevented from executing (§5.2.2).
	urgent bool
	// piggyAck acknowledges the peer's DATA with this seq on every
	// transmission of this message.
	piggyAck    bool
	piggyAckSeq uint8
}

// outbox is the per-destination stop-and-wait send state.
type outbox struct {
	queue    []*sendReq
	cur      *sendReq
	deadline sim.Time
	interval time.Duration
	timerGen int
	sent     bool // cur transmitted at least once
	attempts int  // transmissions of cur so far (for observer events)
}

// Endpoint is one node's transport instance.
type Endpoint struct {
	k       *sim.Kernel
	cfg     Config
	mid     frame.MID
	iface   wire.Iface
	hooks   Hooks
	conns   map[frame.MID]*conn
	out     map[frame.MID]*outbox
	holds   map[frame.MID]*held
	defAcks map[frame.MID]*deferredAck
	// Windowed-mode state (Config.Window > 1), created lazily so the
	// stop-and-wait path carries no trace of it. See window.go.
	wout map[frame.MID]*wsend
	win  map[frame.MID]*wrecv
	// wquiet holds per-peer reconnect quiet deadlines set by wPeerDead:
	// after declaring a peer dead the sender restarts its sequence space,
	// which is only safe once the peer's receive record has lapsed — and
	// that record lapses on ConnLifetime of *silence* (§5.2.2). Sending
	// immediately would keep the stale record alive with frames it can
	// only reject, a permanent desync. Consumed lazily by wsendFor.
	wquiet map[frame.MID]sim.Time
	// recvReadyAt serializes windowed receive charges: the processor
	// finishes frames in arrival order, so a small fragment's (cheaper)
	// charge cannot complete before a larger fragment that arrived first —
	// which would hand the strict in-order go-back-N receiver the frames
	// out of sequence and force a spurious retransmission round. The
	// receive-side mirror of wsend.readyAt. Unused when Window <= 1.
	recvReadyAt sim.Time
	totals      CostTotals
	crashed     bool
	epoch       int // bumped on crash; stale scheduled work checks it
}

// windowed reports whether the sliding-window engine is in effect.
func (e *Endpoint) windowed() bool { return e.cfg.Window > 1 }

// selective reports whether the windowed engine runs selective-repeat
// recovery (the default) rather than legacy go-back-N.
func (e *Endpoint) selective() bool {
	return e.windowed() && e.cfg.Recovery != RecoveryGoBackN
}

// New attaches a transport endpoint for mid to a frame-carrying medium:
// the simulated bus (bus.Bus.Wire) or the socket backend (internal/netx).
// The endpoint never sees which one it got — every wire interaction goes
// through the wire.Iface seam.
func New(k *sim.Kernel, w wire.Network, mid frame.MID, cfg Config, hooks Hooks) (*Endpoint, error) {
	if hooks.OnData == nil {
		return nil, fmt.Errorf("deltat: OnData hook is required")
	}
	e := &Endpoint{
		k:       k,
		cfg:     cfg,
		mid:     mid,
		hooks:   hooks,
		conns:   make(map[frame.MID]*conn),
		out:     make(map[frame.MID]*outbox),
		holds:   make(map[frame.MID]*held),
		defAcks: make(map[frame.MID]*deferredAck),
	}
	iface, err := w.Attach(mid, e.receive)
	if err != nil {
		return nil, err
	}
	e.iface = iface
	return e, nil
}

// MID reports the endpoint's machine id.
func (e *Endpoint) MID() frame.MID { return e.mid }

// emit delivers one observer event, stamping time and place. Free (no
// event is even built) when no observer is installed, preserving the
// zero-overhead-when-disabled contract.
func (e *Endpoint) emit(kind EventKind, peer frame.MID, seq uint8, attempt int) {
	if e.cfg.Observer == nil {
		return
	}
	//lint:allow noalloc (observer: nil-guarded event emission, absent on measured runs)
	e.cfg.Observer(Event{At: e.k.Now(), Kind: kind, Node: e.mid, Peer: peer, Seq: seq, Attempt: attempt})
}

// Config returns the protocol configuration.
func (e *Endpoint) Config() Config { return e.cfg }

// CountPatternTableFull forwards a pattern-table saturation rejection to
// the bus counters (bus.Stats.PatternTableFull). The kernel layer owns the
// table but has no bus handle of its own; the endpoint lends its interface.
func (e *Endpoint) CountPatternTableFull() { e.iface.CountPatternTableFull() }

// Totals returns the accumulated cost buckets.
func (e *Endpoint) Totals() CostTotals { return e.totals }

// ResetTotals zeroes the cost buckets (measurement windows).
func (e *Endpoint) ResetTotals() { e.totals = CostTotals{} }

// Send queues payload for reliable delivery to dst. retrans, when non-nil,
// replaces the payload on retransmissions (SODA strips bulk data from
// REQUEST retries, §5.2.3). cb receives exactly one Result unless the local
// node crashes first. The windowed engine retransmits fragments verbatim,
// so retrans is ignored when Config.Window > 1.
//
//lint:hotpath
func (e *Endpoint) Send(dst frame.MID, payload, retrans []byte, cb func(Result)) {
	if e.windowed() {
		//lint:allow noalloc (cold: the windowed transport is opt-in; the measured path runs window=1)
		e.wEnqueue(dst, payload, cb, false)
		return
	}
	//lint:allow noalloc (counted: one sendReq per reliable message)
	e.enqueue(dst, &sendReq{payload: payload, retrans: retrans, cb: cb})
}

// SendUrgent is Send with reply priority: the message is queued ahead of
// ordinary traffic, and if the current outgoing message is parked in a
// BUSY-retry backoff it is preempted (swapped back into the queue) so the
// reply goes out first. SODA's ACCEPT path requires this — a busy-retrying
// REQUEST toward a peer must never block the reply that peer is waiting
// for (§5.2.2).
//
//lint:hotpath
func (e *Endpoint) SendUrgent(dst frame.MID, payload, retrans []byte, cb func(Result)) {
	if e.windowed() {
		//lint:allow noalloc (cold: the windowed transport is opt-in; the measured path runs window=1)
		e.wEnqueue(dst, payload, cb, true)
		return
	}
	//lint:allow noalloc (counted: one sendReq per reliable message)
	e.enqueue(dst, &sendReq{payload: payload, retrans: retrans, cb: cb, urgent: true})
}

// SendResolvingHold is Send plus piggybacked acknowledgement: if a hold for
// a frame from dst is pending, this message carries its ACK (resolving the
// hold), and the function reports true. With no hold pending it behaves
// exactly like Send and reports false.
// The piggyback only applies when this message transmits immediately: if
// earlier traffic occupies the outbox, the acknowledgement is released as a
// plain ACK right away — the peer may be blocked waiting for it, and the
// queued traffic may be blocked on the peer (§5.2.2's no-deadlock rule).
//
//lint:hotpath
func (e *Endpoint) SendResolvingHold(dst frame.MID, payload, retrans []byte, cb func(Result)) bool {
	if e.windowed() {
		// Message acknowledgements bypass the window, so the hold is
		// released as a plain ACK immediately and the reply travels as an
		// ordinary urgent windowed message — there is no single-frame
		// piggyback to defer the ACK for.
		had := e.ResolveHold(dst, Decision{Verdict: VerdictAck})
		e.SendUrgent(dst, payload, retrans, cb)
		return had
	}
	if e.OutboxBusy(dst) {
		had := e.ResolveHold(dst, Decision{Verdict: VerdictAck})
		e.SendUrgent(dst, payload, retrans, cb)
		return had
	}
	//lint:allow noalloc (counted: one sendReq per reliable message)
	req := &sendReq{payload: payload, retrans: retrans, cb: cb}
	h, ok := e.holds[dst]
	if ok {
		delete(e.holds, dst)
		h.gen++ // cancel expiry
		c := e.conn(dst)
		c.recvValid = true
		c.recvSeq = h.seq
		// Duplicates of the held frame are answered by the
		// retransmission of this DATA (it always carries the piggyback),
		// so nothing is cached for replay.
		c.cached = cachedReply{kind: replyNone}
		req.piggyAck = true
		req.piggyAckSeq = h.seq
	}
	e.enqueue(dst, req)
	return ok
}

// HasHold reports whether a frame from src is currently held.
func (e *Endpoint) HasHold(src frame.MID) bool {
	_, ok := e.holds[src]
	return ok
}

// OutboxBusy reports whether a reliable message toward dst is in flight or
// queued. Stop-and-wait admits one outstanding DATA per direction, so a
// reply that must not wait (SODA's ACCEPT, §5.2.2) has to ride an
// acknowledgement instead when this is true.
func (e *Endpoint) OutboxBusy(dst frame.MID) bool {
	if e.windowed() {
		ws := e.wout[dst]
		return ws != nil && (len(ws.queue) > 0 || len(ws.inflight) > 0)
	}
	o, ok := e.out[dst]
	return ok && (o.cur != nil || len(o.queue) > 0)
}

// ResolveHold disposes of a held frame from src with an explicit verdict
// (VerdictHold is invalid here). It reports false if no hold is pending —
// the hold already auto-resolved.
//
//lint:hotpath
func (e *Endpoint) ResolveHold(src frame.MID, dec Decision) bool {
	h, ok := e.holds[src]
	if !ok {
		return false
	}
	delete(e.holds, src)
	h.gen++
	e.applyVerdict(src, h.seq, dec)
	return true
}

// FailAllHolds resolves every pending hold with an error NACK. The SODA
// kernel uses it when its client dies: senders whose frames were being held
// learn promptly that the peer state is gone. No-op on a crashed endpoint
// (its holds are already discarded).
func (e *Endpoint) FailAllHolds(code frame.ErrCode) {
	if e.crashed || len(e.holds) == 0 {
		return
	}
	for _, src := range sortediter.Keys(e.holds) { // deterministic resolution order
		e.ResolveHold(src, Decision{Verdict: VerdictError, Err: code})
	}
}

// SendDatagram transmits an unreliable one-shot frame; dst may be
// BroadcastMID. No acknowledgement, retransmission or sequencing applies.
func (e *Endpoint) SendDatagram(dst frame.MID, payload []byte) {
	if e.crashed {
		return
	}
	d := e.chargeSend(false, 0)
	epoch := e.epoch
	e.k.After(d, func() {
		if epoch != e.epoch {
			return
		}
		e.transmit(&frame.TransportFrame{
			Kind:    frame.TransportDatagram,
			Src:     e.mid,
			Dst:     dst,
			Payload: payload,
		})
	})
}

// Crash drops all transport state and disconnects from the bus. Pending
// Send callbacks are discarded (the kernel above resets with us).
func (e *Endpoint) Crash() {
	e.crashed = true
	e.epoch++
	e.iface.Down()
	e.conns = make(map[frame.MID]*conn)
	e.out = make(map[frame.MID]*outbox)
	e.holds = make(map[frame.MID]*held)
	e.defAcks = make(map[frame.MID]*deferredAck)
	e.wout = nil
	e.win = nil
	e.recvReadyAt = 0
}

// Quiescent reports whether the endpoint has fully settled: nothing queued
// or unacknowledged toward any destination, no held or deferred-ack frames,
// no partially reassembled or undelivered windowed messages, and no
// acknowledgement still owed. After a drained simulation run (sim.Kernel.Run
// returned), a non-quiescent endpoint means the protocol leaked state —
// the property battery asserts this after every fault schedule.
func (e *Endpoint) Quiescent() bool {
	if len(e.holds) > 0 || len(e.defAcks) > 0 {
		return false
	}
	for _, dst := range sortediter.Keys(e.out) {
		if o := e.out[dst]; o.cur != nil || len(o.queue) > 0 {
			return false
		}
	}
	for _, dst := range sortediter.Keys(e.wout) {
		ws := e.wout[dst]
		if len(ws.queue) > 0 || len(ws.inflight) > 0 || len(ws.frames) > 0 {
			return false
		}
	}
	for _, src := range sortediter.Keys(e.win) {
		wr := e.win[src]
		if wr.delivering || wr.busyWait || wr.ackPending || wr.asmOpen ||
			len(wr.buffered) > 0 || len(wr.ooo) > 0 {
			return false
		}
	}
	return true
}

// Reboot rejoins the network after the Delta-t quiet period (2·MPL+Δt) and
// then invokes ready. Sends issued before ready are dropped.
func (e *Endpoint) Reboot(ready func()) {
	epoch := e.epoch
	e.k.After(e.cfg.QuietPeriod(), func() {
		if epoch != e.epoch {
			return // crashed again while quiet
		}
		e.crashed = false
		e.iface.Up()
		if ready != nil {
			ready()
		}
	})
}

func (e *Endpoint) conn(peer frame.MID) *conn {
	c, ok := e.conns[peer]
	now := e.k.Now()
	if !ok {
		//lint:allow noalloc (steady-state: one connection record per peer, reused across transactions)
		c = &conn{lastHeard: now}
		//lint:allow noalloc (steady-state: map entry created once per peer)
		e.conns[peer] = c
		e.emit(EvConnOpen, peer, 0, 0)
		return c
	}
	// Lazy Delta-t expiry: after ConnLifetime of silence the RECEIVE side
	// of the record is discarded — any sequence number is accepted again
	// ("take any SN", §5.2.2). The send side (our alternating bit) never
	// resets outside a crash: resetting it independently of the peer's
	// record lifetime risks a fresh message aliasing a stale duplicate,
	// exactly the confusion Delta-t exists to prevent. A record whose
	// frame is still held (unacknowledged) is never reclaimed.
	if _, holding := e.holds[peer]; !holding && now-c.lastHeard > e.cfg.ConnLifetime() {
		if c.recvValid {
			e.emit(EvConnExpire, peer, c.recvSeq, 0)
		}
		c.recvValid = false
		c.cached = cachedReply{}
	}
	return c
}

func (e *Endpoint) enqueue(dst frame.MID, req *sendReq) {
	if e.crashed {
		return
	}
	o, ok := e.out[dst]
	if !ok {
		//lint:allow noalloc (steady-state: one outbox per destination, reused across transactions)
		o = &outbox{}
		//lint:allow noalloc (steady-state: map entry created once per destination)
		e.out[dst] = o
	}
	if req.urgent {
		// Insert after any earlier urgent messages, before the rest.
		pos := 0
		for pos < len(o.queue) && o.queue[pos].urgent {
			pos++
		}
		//lint:allow noalloc (amortized: queue storage grows to peak depth, then reused)
		o.queue = append(o.queue, nil)
		copy(o.queue[pos+1:], o.queue[pos:])
		o.queue[pos] = req
	} else {
		//lint:allow noalloc (amortized: queue storage grows to peak depth, then reused)
		o.queue = append(o.queue, req)
	}
	e.startNext(dst, o)
}

func (e *Endpoint) startNext(dst frame.MID, o *outbox) {
	if o.cur != nil || len(o.queue) == 0 {
		return
	}
	o.cur = o.queue[0]
	o.queue = o.queue[1:]
	o.sent = false
	o.attempts = 0
	o.interval = e.cfg.RetransInterval
	o.deadline = e.k.Now() + e.cfg.DeadAfter()
	e.transmitCur(dst, o)
}

func (e *Endpoint) transmitCur(dst frame.MID, o *outbox) {
	req := o.cur
	payload := req.payload
	if o.sent && req.retrans != nil {
		payload = req.retrans
	}
	first := !o.sent
	o.sent = true
	d := e.chargeSend(true, len(payload))
	epoch := e.epoch
	//lint:allow noalloc (counted: one transmit closure per DATA frame)
	e.k.After(d, func() {
		if epoch != e.epoch || o.cur != req {
			return
		}
		c := e.conn(dst)
		// A deferred plain acknowledgement rides the first DATA frame
		// toward its peer (§5.2.3); explicit piggybacks take precedence.
		if !req.piggyAck {
			if da, ok := e.defAcks[dst]; ok {
				req.piggyAck = true
				req.piggyAckSeq = da.seq
				da.gen = -1 // cancel the plain-ack fallback
				delete(e.defAcks, dst)
			}
		}
		//lint:allow noalloc (counted: one frame header per DATA transmission)
		f := &frame.TransportFrame{
			Kind:       frame.TransportData,
			Src:        e.mid,
			Dst:        dst,
			Seq:        c.sendSeq,
			ConnOpen:   true,
			AckPresent: req.piggyAck,
			AckSeq:     req.piggyAckSeq,
			Payload:    payload,
		}
		o.attempts++
		if f.AckPresent {
			e.iface.CountPiggybackedAck()
			e.emit(EvPiggybackAck, dst, f.AckSeq, o.attempts)
		}
		e.transmit(f)
		e.armRetransmit(dst, o, req, first)
	})
}

func (e *Endpoint) armRetransmit(dst frame.MID, o *outbox, req *sendReq, first bool) {
	o.timerGen++
	gen := o.timerGen
	wait := o.interval + e.wireTime(len(req.payload))*3
	if e.cfg.RetransJitter > 0 {
		//lint:allow noalloc (cold: retransmission jitter is off in the default config)
		wait += time.Duration(e.k.Rand().Int63n(int64(e.cfg.RetransJitter) + 1))
	}
	if !first && e.cfg.RetransBackoff > 1 {
		// The retransmission rate decreases with the number of
		// attempts to avoid flooding the bus (§5.2.2), capped so a
		// live-but-lossy peer still sees several attempts per
		// death-detection window.
		o.interval = time.Duration(float64(o.interval) * e.cfg.RetransBackoff)
		if max := e.cfg.DeadAfter() / 6; o.interval > max {
			o.interval = max
		}
	}
	epoch := e.epoch
	//lint:allow noalloc (counted: one retransmission-timer closure per DATA frame)
	e.k.After(wait, func() {
		if epoch != e.epoch || o.timerGen != gen || o.cur != req {
			return
		}
		if e.k.Now() >= o.deadline {
			e.peerDead(dst, o)
			return
		}
		e.totals.RetransTimer += e.cfg.Costs.RetransTimer
		e.iface.CountRetransmission()
		e.emit(EvRetransmit, dst, e.conn(dst).sendSeq, o.attempts+1)
		e.transmitCur(dst, o)
	})
}

// peerDead reports the destination dead: the current message and everything
// queued behind it fail, and the connection record is discarded.
func (e *Endpoint) peerDead(dst frame.MID, o *outbox) {
	//lint:allow noalloc (cold: peer-death teardown)
	failed := append([]*sendReq{o.cur}, o.queue...)
	o.cur = nil
	o.queue = nil
	o.timerGen++
	e.iface.CountPeerDeadTimeout()
	if c := e.conns[dst]; c != nil {
		e.emit(EvPeerDead, dst, c.sendSeq, o.attempts)
		e.emit(EvConnClose, dst, c.sendSeq, 0)
	} else {
		e.emit(EvPeerDead, dst, 0, o.attempts)
	}
	delete(e.conns, dst)
	for _, req := range failed {
		if req != nil && req.cb != nil {
			//lint:allow noalloc (cold: peer-death teardown)
			req.cb(Result{Kind: ResultPeerDead})
		}
	}
}

// wireTime estimates the transmission time of a payload of n bytes, used
// to scale retransmission waits so large frames are not retried while
// still in flight.
func (e *Endpoint) wireTime(n int) time.Duration {
	bps := e.cfg.LineBytesPerSec
	if bps <= 0 {
		bps = 125_000
	}
	return time.Duration(int64(n) * int64(time.Second) / bps)
}

func (e *Endpoint) transmit(f *frame.TransportFrame) {
	e.totals.FramesSent++
	e.iface.Send(f.Dst, frame.EncodeTransport(f))
}

// receive handles a raw frame from the bus (simulation context). The
// shared decode aliases the payload into the bus's buffer, which is
// immutable by contract; everything downstream either only reads it or
// copies at the kernel-message decode (frame.Decode's reader.bytes).
//
//lint:hotpath
func (e *Endpoint) receive(raw []byte) {
	f, err := frame.DecodeTransportShared(raw)
	if err != nil {
		return // CRC-damaged frames are silently discarded (§5.2.2)
	}
	if f.Dst != e.mid && f.Dst != frame.BroadcastMID {
		return // MID screening rejects spurious traffic (§6.12)
	}
	dataBytes := 0
	if f.Kind == frame.TransportData || f.Kind == frame.TransportFrag {
		dataBytes = len(f.Payload)
	}
	d := e.chargeRecv(f.Kind, dataBytes)
	if e.windowed() {
		// Serialize behind earlier receive charges (see recvReadyAt) so
		// process() sees frames in arrival order. Gated on the window so
		// a stop-and-wait endpoint's timing is untouched.
		now := e.k.Now()
		done := now + sim.Time(d)
		if e.recvReadyAt > now {
			done = e.recvReadyAt + sim.Time(d)
		}
		e.recvReadyAt = done
		d = time.Duration(done - now)
	}
	epoch := e.epoch
	//lint:allow noalloc (counted: one deferred-process closure per received frame)
	e.k.After(d, func() {
		if epoch != e.epoch {
			return
		}
		e.process(f)
	})
}

func (e *Endpoint) process(f *frame.TransportFrame) {
	e.totals.FramesRecv++
	if f.Kind == frame.TransportDatagram {
		if e.hooks.OnDatagram != nil {
			//lint:allow noalloc (cold: datagrams serve DISCOVER, not the request round trip)
			e.hooks.OnDatagram(f.Src, f.Payload)
		}
		return
	}
	if e.windowed() {
		//lint:allow noalloc (cold: the windowed transport is opt-in; the measured path runs window=1)
		e.wProcess(f)
		return
	}
	c := e.conn(f.Src)
	c.lastHeard = e.k.Now()
	// Death means silence: any frame heard from the peer — including a
	// duplicate or a stale acknowledgement — proves it alive and restarts
	// the no-response clock for the outstanding message (§5.2.2 reports a
	// destination dead only when nothing is heard during MPL+Δt).
	if o, ok := e.out[f.Src]; ok && o.cur != nil {
		o.deadline = e.k.Now() + e.cfg.DeadAfter()
	}
	switch f.Kind {
	case frame.TransportAck:
		e.handleAck(f.Src, f.Seq, f.Payload)
	case frame.TransportNack:
		e.handleNack(f.Src, f.Seq, f.Err)
	case frame.TransportData:
		if f.AckPresent {
			e.handleAck(f.Src, f.AckSeq, nil)
		}
		e.handleData(f.Src, f.Seq, f.Payload)
	}
}

func (e *Endpoint) handleAck(src frame.MID, seq uint8, reply []byte) {
	o, ok := e.out[src]
	if !ok || o.cur == nil {
		return // stale
	}
	c := e.conn(src)
	if seq != c.sendSeq {
		return // acknowledges something else
	}
	req := o.cur
	o.cur = nil
	o.timerGen++
	e.emit(EvAckRx, src, seq, o.attempts)
	c.sendSeq ^= 1
	if req.cb != nil {
		//lint:allow noalloc (indirect: send-completion callback; its targets are //lint:hotpath roots in soda/internal/core)
		req.cb(Result{Kind: ResultAcked, Reply: reply})
	}
	e.startNext(src, o)
}

func (e *Endpoint) handleNack(src frame.MID, seq uint8, code frame.ErrCode) {
	o, ok := e.out[src]
	if !ok || o.cur == nil {
		return
	}
	c := e.conn(src)
	if seq != c.sendSeq {
		return
	}
	if code == frame.NackBusy {
		// The destination is alive but its handler is unavailable:
		// reset the death clock and retry at the slower busy rate
		// (§5.2.3).
		req := o.cur
		o.deadline = e.k.Now() + e.cfg.DeadAfter()
		e.emit(EvBusyRetry, src, seq, o.attempts)
		if !req.urgent && len(o.queue) > 0 && o.queue[0].urgent {
			// A kernel reply is waiting behind this busy-retrying
			// request; the peer may be blocked on it. Preempt: the
			// reply goes out now and the request re-queues at the head
			// of the ordinary traffic. The busy NACK consumed nothing
			// at the receiver, so reusing the sequence number for a
			// different message is sound.
			rest := o.queue[1:]
			pos := 0
			for pos < len(rest) && rest[pos].urgent {
				pos++
			}
			//lint:allow noalloc (cold: busy-retry preemption)
			rebuilt := make([]*sendReq, 0, len(o.queue)+1)
			//lint:allow noalloc (cold: busy-retry preemption)
			rebuilt = append(rebuilt, o.queue[0])
			//lint:allow noalloc (cold: busy-retry preemption)
			rebuilt = append(rebuilt, rest[:pos]...)
			//lint:allow noalloc (cold: busy-retry preemption)
			rebuilt = append(rebuilt, req)
			//lint:allow noalloc (cold: busy-retry preemption)
			rebuilt = append(rebuilt, rest[pos:]...)
			o.queue = rebuilt
			o.cur = nil
			o.timerGen++
			e.startNext(src, o)
			return
		}
		o.timerGen++
		gen := o.timerGen
		epoch := e.epoch
		//lint:allow noalloc (cold: busy-retry timer)
		e.k.After(e.cfg.BusyRetryInterval, func() {
			if epoch != e.epoch || o.timerGen != gen || o.cur != req {
				return
			}
			e.transmitCur(src, o)
		})
		return
	}
	req := o.cur
	o.cur = nil
	o.timerGen++
	c.sendSeq ^= 1 // error NACKs consume the message
	if req.cb != nil {
		//lint:allow noalloc (cold: error-NACK completion)
		req.cb(Result{Kind: ResultError, Err: code})
	}
	e.startNext(src, o)
}

func (e *Endpoint) handleData(src frame.MID, seq uint8, payload []byte) {
	c := e.conn(src)
	if h, ok := e.holds[src]; ok {
		if h.seq == seq {
			return // duplicate of the held frame; resolution will answer
		}
		// A new message while one is held cannot happen under
		// stop-and-wait; drop defensively.
		return
	}
	if c.recvValid && seq == c.recvSeq {
		e.replay(src, seq, c)
		return
	}
	//lint:allow noalloc (indirect: kernel OnData hook, itself a //lint:hotpath root in soda/internal/core)
	dec := e.hooks.OnData(src, payload)
	e.applyVerdict(src, seq, dec)
}

// replay re-answers a duplicate of the last consumed DATA frame using the
// cached reply, so a lost ACK is recovered without re-delivering (§5.2.3).
func (e *Endpoint) replay(src frame.MID, seq uint8, c *conn) {
	switch c.cached.kind {
	case replyAck:
		e.sendAck(src, seq, c.cached.payload)
	case replyNack:
		e.sendNack(src, seq, c.cached.err)
	case replyNone:
		// Consumed via a piggybacked ACK on a reverse DATA frame whose
		// own retransmission timer covers the loss; stay silent.
	}
}

func (e *Endpoint) applyVerdict(src frame.MID, seq uint8, dec Decision) {
	if e.windowed() {
		//lint:allow noalloc (cold: the windowed transport is opt-in; the measured path runs window=1)
		e.wApplyVerdict(src, seq, dec)
		return
	}
	c := e.conn(src)
	switch dec.Verdict {
	case VerdictAck:
		c.recvValid = true
		c.recvSeq = seq
		c.cached = cachedReply{kind: replyAck, payload: dec.Reply}
		e.sendAck(src, seq, dec.Reply)
	case VerdictError:
		c.recvValid = true
		c.recvSeq = seq
		c.cached = cachedReply{kind: replyNack, err: dec.Err}
		e.sendNack(src, seq, dec.Err)
	case VerdictAckDeferred:
		c.recvValid = true
		c.recvSeq = seq
		c.cached = cachedReply{kind: replyAck}
		//lint:allow noalloc (counted: one deferred-ack record per consumed DATA frame)
		da := &deferredAck{seq: seq}
		//lint:allow noalloc (counted: deferred-ack map entry, deleted on release)
		e.defAcks[src] = da
		gen := da.gen
		epoch := e.epoch
		//lint:allow noalloc (counted: one deferred-ack timer closure per consumed DATA frame)
		e.k.After(e.cfg.A, func() {
			if epoch != e.epoch || e.defAcks[src] != da || da.gen != gen {
				return
			}
			delete(e.defAcks, src)
			e.sendAck(src, seq, nil)
		})
	case VerdictBusy:
		// Not consumed: no record update, so the retry is processed
		// fresh.
		e.sendNack(src, seq, frame.NackBusy)
	case VerdictHold:
		//lint:allow noalloc (counted: one hold record per held REQUEST)
		h := &held{seq: seq, expiry: dec.ExpiryVerdict}
		//lint:allow noalloc (counted: hold map entry, deleted on resolution)
		e.holds[src] = h
		timeout := dec.HoldTimeout
		if timeout < 0 {
			return // no auto expiry; the upper layer owns the hold
		}
		if timeout == 0 {
			timeout = e.cfg.A
		}
		if h.expiry == 0 {
			h.expiry = VerdictAck
		}
		gen := h.gen
		epoch := e.epoch
		//lint:allow noalloc (counted: one hold-expiry timer closure per held REQUEST)
		e.k.After(timeout, func() {
			if epoch != e.epoch || e.holds[src] != h || h.gen != gen {
				return
			}
			delete(e.holds, src)
			e.applyVerdict(src, seq, Decision{Verdict: h.expiry})
			if e.hooks.OnHoldExpired != nil {
				//lint:allow noalloc (cold: hold expiry fires only when the upper layer stalls)
				e.hooks.OnHoldExpired(src, h.expiry)
			}
		})
	default:
		//lint:allow noalloc (cold: invalid-verdict panic)
		panic(fmt.Sprintf("deltat: invalid verdict %d", dec.Verdict))
	}
}

func (e *Endpoint) sendAck(dst frame.MID, seq uint8, payload []byte) {
	e.emit(EvAckTx, dst, seq, 0)
	d := e.chargeSend(false, 0)
	epoch := e.epoch
	//lint:allow noalloc (counted: one ack closure per acknowledged frame)
	e.k.After(d, func() {
		if epoch != e.epoch {
			return
		}
		//lint:allow noalloc (counted: one ACK frame header per acknowledgement)
		e.transmit(&frame.TransportFrame{
			Kind:     frame.TransportAck,
			Src:      e.mid,
			Dst:      dst,
			Seq:      seq,
			ConnOpen: true,
			Payload:  payload,
		})
	})
}

func (e *Endpoint) sendNack(dst frame.MID, seq uint8, code frame.ErrCode) {
	d := e.chargeSend(false, 0)
	epoch := e.epoch
	//lint:allow noalloc (cold: NACKs are recovery traffic)
	e.k.After(d, func() {
		if epoch != e.epoch {
			return
		}
		//lint:allow noalloc (cold: NACKs are recovery traffic)
		e.transmit(&frame.TransportFrame{
			Kind:    frame.TransportNack,
			Src:     e.mid,
			Dst:     dst,
			Seq:     seq,
			Err:     code,
			Payload: nil,
		})
	})
}

// chargeSend accounts the CPU cost of emitting a frame and returns the
// processing delay before it reaches the bus.
func (e *Endpoint) chargeSend(data bool, payloadLen int) time.Duration {
	cs := e.cfg.Costs
	d := cs.ProtocolPerFrame + cs.ConnTimerPerFrame
	e.totals.Protocol += cs.ProtocolPerFrame
	e.totals.ConnTimer += cs.ConnTimerPerFrame
	if data {
		d += cs.RetransTimer
		e.totals.RetransTimer += cs.RetransTimer
		cp := time.Duration(payloadLen) * cs.CopyPerByte
		d += cp
		e.totals.Copy += cp
	}
	return d
}

// chargeRecv accounts the CPU cost of accepting a frame from the bus and
// returns the processing delay before it is interpreted.
func (e *Endpoint) chargeRecv(kind frame.TransportKind, dataLen int) time.Duration {
	cs := e.cfg.Costs
	d := cs.ProtocolPerFrame + cs.ConnTimerPerFrame
	e.totals.Protocol += cs.ProtocolPerFrame
	e.totals.ConnTimer += cs.ConnTimerPerFrame
	switch kind {
	case frame.TransportAck, frame.TransportNack, frame.TransportFragAck:
		d += cs.RetransTimer
		e.totals.RetransTimer += cs.RetransTimer
	case frame.TransportData, frame.TransportFrag:
		cp := time.Duration(dataLen) * cs.CopyPerByte
		d += cp
		e.totals.Copy += cp
	}
	return d
}

// Sliding-window engine for the Delta-t endpoint (Config.Window > 1).
//
// The stop-and-wait transport in deltat.go admits one outstanding DATA frame
// per direction, which caps bulk throughput at one frame per round trip. The
// windowed mode keeps every Delta-t property — timer-based connection
// records, duplicate suppression, death detection by silence, the busy/urgent
// no-deadlock rule — but pipelines traffic two ways:
//
//   - up to Config.Window reliable MESSAGES may be unacknowledged toward one
//     destination at once (the window is counted in messages, matching the
//     paper's per-request accounting);
//   - each message is cut into FRAG frames of at most FragSize payload
//     bytes, numbered in a per-link frame-sequence stream that the receiver
//     acknowledges cumulatively (go-back-N).
//
// Frame sequence numbers and message sequence numbers are uint8 serial
// numbers; correctness requires the outstanding span to stay below half the
// space, which maxInflightFrags and maxWindowMessages guarantee.
//
// Loss recovery comes in two modes (Config.Recovery, DESIGN.md §12):
//
//   - RecoverySelective (default): the receiver buffers out-of-order
//     fragments in a bounded per-peer map and reports them to the sender in
//     a SACK bitmap riding every standalone FRAGACK; the sender retransmits
//     only the holes — on the recovery timer, or early via fast-retransmit
//     when fastRetransmitDupAcks duplicate cumulative acks arrive. An AIMD
//     controller sizes the effective message window (cwnd): it starts at the
//     operator's Config.Window ceiling (the LAN's capacity is known, so the
//     search runs downward from evidence of loss rather than upward from 1),
//     halves on every recovery-timer fire, and regrows by one message per
//     clean window's worth of completions, never exceeding the ceiling.
//   - RecoveryGoBackN (legacy): the receiver only accepts the next in-order
//     frame sequence, and the sender's single per-destination timer re-sends
//     every unacknowledged fragment.
//
// In both modes message completion is signalled separately by a TransportAck
// carrying the message sequence (and any reply payload), exactly like the
// stop-and-wait path — so a lost completion ack is recovered by the §5.2.3
// cached-reply replay when a duplicate of the message's final fragment
// arrives.
//
// Window=1 configurations never reach this file: every entry point is gated
// on Endpoint.windowed(), keeping the default path bit-identical to the
// pre-window transport.
package deltat

import (
	"time"

	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/sortediter"
)

// DefaultFragSize is the FRAG payload cap when Config.FragSize is unset.
// 1024 keeps a full-size fragment close to the thesis's maximum Megalink
// frame while cutting a 1000-word message into just two frames.
const DefaultFragSize = 1024

const (
	// maxWindowMessages clamps Config.Window so message sequence numbers
	// stay within half the uint8 serial space.
	maxWindowMessages = 32
	// maxInflightFrags bounds unacknowledged FRAG frames per destination,
	// keeping frame sequence numbers within half the serial space.
	maxInflightFrags = 64
	// maxFragsPerMsg bounds fragments per message (FragIndex is uint8);
	// larger messages get a proportionally larger effective FragSize.
	maxFragsPerMsg = 256
	// replyCacheCap bounds the per-peer cache of message replies kept for
	// duplicate replay: twice the window, so a reply outlives every
	// message the sender can still be probing for.
	replyCacheCap = 2 * maxWindowMessages
	// sackSpan is how many sequence numbers past cum+1 the SACK bitmap
	// covers (64 bits; cum+1 is by definition the first hole and needs no
	// bit). Because maxInflightFrags == sackSpan, a compliant sender's
	// whole outstanding span is always representable.
	sackSpan = 64
	// maxOOOFrags bounds the per-peer out-of-order reassembly buffer in
	// selective mode. A compliant sender can have at most sackSpan-1
	// fragments beyond the first hole outstanding, so eviction only ever
	// fires against non-compliant (or wildly delayed) traffic.
	maxOOOFrags = maxInflightFrags
	// fastRetransmitDupAcks is K: after this many consecutive standalone
	// cumulative acks with no progress, the sender retransmits the holes
	// without waiting for the recovery timer.
	fastRetransmitDupAcks = 3
)

// seqLE reports a <= b in uint8 serial-number order, valid while the live
// span stays under half the sequence space.
func seqLE(a, b uint8) bool { return b-a < 128 }

// seqLT is strict serial-number order.
func seqLT(a, b uint8) bool { return a != b && seqLE(a, b) }

// wmsg is one reliable message in the windowed outbox.
type wmsg struct {
	msgSeq  uint8
	payload []byte
	cb      func(Result)
	urgent  bool
	fragSz  int
	frags   int
	next    int   // next fragment index of the current transmission pass
	lastSeq uint8 // frame seq of the final fragment, for probe duplicates
	parked  bool  // busy-parked awaiting the slow retry
	parkGen int
	done    bool // completed; stale scheduled work checks it
}

// wfrag is one unacknowledged FRAG transmission.
type wfrag struct {
	seq uint8
	msg *wmsg
	idx int
	// sacked marks a fragment the receiver reported holding out of order
	// (selective mode). A sacked fragment is skipped by hole
	// retransmission but is NOT released — only the cumulative ack frees
	// it, so a receiver-side eviction can never strand the transfer
	// (anti-renege: the marks are cleared after two consecutive timer
	// fires without progress).
	sacked bool
	// wireAt is when this fragment's latest copy finishes leaving the
	// wire. While wireAt is in the future the copy is still in our own
	// egress queue, so an unanswered fragment is not evidence of loss —
	// recovery skips it rather than stacking duplicates behind it.
	wireAt sim.Time
}

// wsend is the per-destination windowed send state.
type wsend struct {
	queue    []*wmsg // admitted when the window opens
	inflight []*wmsg // unacknowledged messages, message-sequence order
	frames   []wfrag // unacknowledged fragments, frame-sequence order
	nextMsg  uint8
	nextSeq  uint8
	stalled  bool // window-full edge already counted
	// readyAt serializes fragment CPU charges: the kernel processor
	// copies one buffer at a time, so a burst of fragments reaches the
	// bus in sequence order even though their per-byte copy charges
	// differ. Without this, a smaller final fragment would overtake its
	// predecessor and the in-order receiver would see a permanent gap.
	readyAt sim.Time
	// lineFreeAt paces fragment submissions to the line rate: the node
	// has one transmitter, so fragment k+1 is handed to the medium only
	// once fragment k has left the wire. Without pacing, a window's worth
	// of fragments floods the bus FIFO at CPU speed and the peer's
	// acknowledgements queue behind the whole burst, collapsing the
	// pipeline into a batch round trip.
	lineFreeAt sim.Time
	deadline   sim.Time
	interval   time.Duration
	attempts   int
	timerGen   int
	armed      bool
	// probeWireAt is when the last §5.2.3 completion probe finishes
	// leaving the wire; a new probe is pointless (and pure egress spam)
	// while the previous one is still queued behind the stream.
	probeWireAt sim.Time
	// quietUntil is the reconnect quiet deadline inherited from wquiet:
	// no frame may leave before it (readyAt/lineFreeAt are seeded to it)
	// and the recovery timer must not burn attempts retransmitting into
	// the enforced silence.
	quietUntil sim.Time

	// AIMD congestion state (selective mode only; see the package doc).
	// cwnd is the adaptive message window, always in [1, Endpoint.window()];
	// cleanAcks counts message completions since the last loss signal
	// toward the next additive increase.
	cwnd      int
	cleanAcks int
	// Duplicate-cumulative-ack tracking for fast retransmit: dupAcks
	// counts consecutive standalone FRAGACKs repeating cumulative point
	// dupCum with no progress. Piggybacked acks never count — a busy
	// reverse direction repeats its cum on every FRAG without implying
	// loss — and any progress resets the run.
	dupCum  uint8
	dupAcks int
}

// sendable returns the message whose fragment should transmit next: the one
// mid-pass, else the earliest admitted message not yet started (a fresh
// admission or a busy retry). Never interleaving fragments of two messages
// keeps each message's fragments contiguous in the frame-sequence stream,
// which the receiver's single reassembly buffer relies on.
func (ws *wsend) sendable() *wmsg {
	var restart *wmsg
	for _, m := range ws.inflight {
		if m.parked || m.next >= m.frags {
			continue
		}
		if m.next > 0 {
			return m
		}
		if restart == nil {
			restart = m
		}
	}
	return restart
}

// outstanding reports whether anything toward the peer still awaits
// acknowledgement (parked messages wait on their own retry timer).
func (ws *wsend) outstanding() bool {
	if len(ws.frames) > 0 {
		return true
	}
	for _, m := range ws.inflight {
		if !m.parked {
			return true
		}
	}
	return false
}

// take removes and returns the inflight message with msgSeq, or nil.
func (ws *wsend) take(msgSeq uint8) *wmsg {
	for i, m := range ws.inflight {
		if m.msgSeq == msgSeq {
			ws.inflight = append(ws.inflight[:i], ws.inflight[i+1:]...)
			m.done = true
			m.parked = false
			m.parkGen++
			return m
		}
	}
	return nil
}

// winMsg is a fully reassembled message awaiting in-order delivery.
type winMsg struct {
	payload []byte
	urgent  bool
}

// oooFrag is one fragment received ahead of the cumulative point and held
// for reassembly once the hole fills (selective mode). The payload is copied
// out of the shared bus buffer at buffering time — the drain happens on a
// later event, past the buffer's lifetime.
type oooFrag struct {
	msgSeq  uint8
	idx     uint8
	end     bool
	urgent  bool
	payload []byte
}

// wrecv is the per-peer windowed receive state.
type wrecv struct {
	valid     bool
	cum       uint8 // highest in-order frame sequence received
	next      uint8 // next message sequence to deliver
	lastHeard sim.Time

	// Reassembly of the (single) message currently arriving in the
	// contiguous frame stream.
	asmOpen bool
	asmSeq  uint8
	asmIdx  int
	asm     []byte

	buffered map[uint8]*winMsg // reassembled, not yet delivered
	skipped  map[uint8]bool    // delivered ahead of order during busyWait

	// Out-of-order fragments keyed by frame sequence (selective mode;
	// always empty under go-back-N). Bounded by maxOOOFrags with
	// deterministic farthest-first eviction; drained into the contiguous
	// assembly stream as the cumulative point advances.
	ooo map[uint8]oooFrag

	delivering bool // one upper-layer verdict outstanding at a time
	busyWait   bool // head message busy-refused; urgent may overtake

	// Cached replies for duplicate replay (§5.2.3), evicted FIFO.
	cache    map[uint8]cachedReply
	cacheAge []uint8

	ackPending bool // standalone FRAGACK scheduled
	ackGen     int
}

// window is the clamped message-window depth — the operator's ceiling.
func (e *Endpoint) window() int {
	w := e.cfg.Window
	if w > maxWindowMessages {
		w = maxWindowMessages
	}
	return w
}

// wLimit is the admission limit actually in force: the AIMD cwnd under
// selective repeat, the fixed operator window under go-back-N.
func (e *Endpoint) wLimit(ws *wsend) int {
	if e.selective() {
		return ws.cwnd
	}
	return e.window()
}

// wFragSize is the effective fragment payload cap for a message of n bytes.
func (e *Endpoint) wFragSize(n int) int {
	fs := e.cfg.FragSize
	if fs <= 0 {
		fs = DefaultFragSize
	}
	if n > fs*maxFragsPerMsg {
		fs = (n + maxFragsPerMsg - 1) / maxFragsPerMsg
	}
	return fs
}

func (e *Endpoint) wsendFor(dst frame.MID) *wsend {
	ws := e.wout[dst]
	if ws == nil {
		// cwnd opens at the operator ceiling: on the known-capacity LAN the
		// AIMD search runs downward from loss evidence, so a clean link is
		// wire-identical to the fixed-window engine.
		ws = &wsend{cwnd: e.window()}
		if q, ok := e.wquiet[dst]; ok {
			// Reconnect after a peer-dead verdict: hold the first frame
			// until the peer's receive record has provably lapsed. Seeding
			// the CPU/line serializers is enough — every transmission is
			// scheduled behind them.
			delete(e.wquiet, dst)
			if q > e.k.Now() {
				ws.readyAt, ws.lineFreeAt, ws.quietUntil = q, q, q
			}
		}
		if e.wout == nil {
			e.wout = make(map[frame.MID]*wsend)
		}
		e.wout[dst] = ws
		if e.win[dst] == nil {
			e.emit(EvConnOpen, dst, 0, 0)
		}
	}
	return ws
}

// wrecvFor returns the receive record for src, applying the lazy Delta-t
// expiry: after ConnLifetime of silence with nothing pending, the record
// lapses and any sequence number is accepted again ("take any SN", §5.2.2).
func (e *Endpoint) wrecvFor(src frame.MID) *wrecv {
	wr := e.win[src]
	now := e.k.Now()
	if wr == nil {
		wr = &wrecv{lastHeard: now}
		if e.win == nil {
			e.win = make(map[frame.MID]*wrecv)
		}
		e.win[src] = wr
		if e.wout[src] == nil {
			e.emit(EvConnOpen, src, 0, 0)
		}
		return wr
	}
	_, holding := e.holds[src]
	if wr.valid && !holding && !wr.delivering && len(wr.buffered) == 0 &&
		now-wr.lastHeard > e.cfg.ConnLifetime() {
		e.emit(EvConnExpire, src, wr.cum, 0)
		*wr = wrecv{lastHeard: wr.lastHeard}
	}
	return wr
}

// wEnqueue queues payload as one reliable windowed message toward dst.
// Urgent messages (kernel replies) jump ahead of queued ordinary traffic,
// mirroring the stop-and-wait urgency rule.
func (e *Endpoint) wEnqueue(dst frame.MID, payload []byte, cb func(Result), urgent bool) {
	if e.crashed {
		return
	}
	ws := e.wsendFor(dst)
	m := &wmsg{payload: payload, cb: cb, urgent: urgent}
	if urgent {
		pos := 0
		for pos < len(ws.queue) && ws.queue[pos].urgent {
			pos++
		}
		ws.queue = append(ws.queue, nil)
		copy(ws.queue[pos+1:], ws.queue[pos:])
		ws.queue[pos] = m
	} else {
		ws.queue = append(ws.queue, m)
	}
	e.wPump(dst, ws)
}

// wPump admits queued messages while the window is open and transmits
// fragments while the fragment budget allows, then makes sure the recovery
// timer covers whatever is outstanding.
func (e *Endpoint) wPump(dst frame.MID, ws *wsend) {
	for {
		m := ws.sendable()
		if m == nil {
			if len(ws.queue) == 0 {
				break
			}
			if len(ws.inflight) >= e.wLimit(ws) {
				if !ws.stalled {
					ws.stalled = true
					e.iface.CountWindowFill()
					e.emit(EvWindowFill, dst, ws.nextMsg, len(ws.inflight))
				}
				break
			}
			m = ws.queue[0]
			ws.queue = ws.queue[1:]
			ws.stalled = false
			m.msgSeq = ws.nextMsg
			ws.nextMsg++
			m.fragSz = e.wFragSize(len(m.payload))
			m.frags = (len(m.payload) + m.fragSz - 1) / m.fragSz
			if m.frags == 0 {
				m.frags = 1 // empty payload still takes one fragment
			}
			if len(ws.inflight) == 0 && len(ws.frames) == 0 {
				// The no-response clock starts when the first frame can
				// actually leave: a reconnect quiet period (ws.readyAt in
				// the future) must not count against the peer.
				base := e.k.Now()
				if ws.readyAt > base {
					base = ws.readyAt
				}
				ws.deadline = base + e.cfg.DeadAfter()
				ws.interval = e.cfg.RetransInterval
				ws.attempts = 0
			}
			ws.inflight = append(ws.inflight, m)
			continue
		}
		if len(ws.frames) >= maxInflightFrags {
			break
		}
		idx := m.next
		m.next++
		seq := ws.nextSeq
		ws.nextSeq++
		if idx == m.frags-1 {
			m.lastSeq = seq
		}
		ws.frames = append(ws.frames, wfrag{seq: seq, msg: m, idx: idx})
		ws.frames[len(ws.frames)-1].wireAt = e.wTransmitFrag(dst, ws, m, idx, seq)
	}
	e.wArm(dst, ws)
}

// wTransmitFrag charges the send cost and schedules fragment idx of m onto
// the bus, serialized behind earlier fragment charges (ws.readyAt). The
// transmission is skipped if the message completes or parks before the
// processing delay elapses. Returns when this copy finishes leaving the
// wire, for the caller to record as the fragment's wireAt.
func (e *Endpoint) wTransmitFrag(dst frame.MID, ws *wsend, m *wmsg, idx int, seq uint8) sim.Time {
	start := idx * m.fragSz
	end := start + m.fragSz
	if end > len(m.payload) {
		end = len(m.payload)
	}
	var chunk []byte
	if start < end {
		chunk = m.payload[start:end]
	}
	d := e.chargeSend(true, len(chunk))
	now := e.k.Now()
	cpuDone := now + d
	if ws.readyAt > now {
		cpuDone = ws.readyAt + d
	}
	ws.readyAt = cpuDone
	submit := cpuDone
	if submit < ws.lineFreeAt {
		submit = ws.lineFreeAt
	}
	wire := (&frame.TransportFrame{Kind: frame.TransportFrag, Payload: chunk}).WireSize()
	ws.lineFreeAt = submit + e.wireTime(wire)
	epoch := e.epoch
	e.k.After(submit-now, func() {
		if epoch != e.epoch || m.done || m.parked {
			return
		}
		f := &frame.TransportFrame{
			Kind:      frame.TransportFrag,
			Src:       e.mid,
			Dst:       dst,
			Seq:       seq,
			ConnOpen:  true,
			MsgSeq:    m.msgSeq,
			FragIndex: uint8(idx),
			FragEnd:   idx == m.frags-1,
			Urgent:    m.urgent,
			Payload:   chunk,
		}
		if wr := e.win[dst]; wr != nil && wr.valid {
			// The fragment carries the reverse direction's cumulative
			// acknowledgement, superseding any standalone FRAGACK pending
			// (§5.2.3's piggyback preference).
			f.AckPresent = true
			f.AckSeq = wr.cum
			wr.ackGen++
			wr.ackPending = false
			e.iface.CountCumulativeAck()
			e.emit(EvCumAck, dst, wr.cum, 0)
		}
		e.transmit(f)
	})
	return ws.lineFreeAt
}

// wArm starts the per-destination go-back-N recovery timer if it is not
// already running and something is outstanding. The wait scales with the
// bytes in flight so a burst is not retried while still on the wire, capped
// well inside the death-detection window.
func (e *Endpoint) wArm(dst frame.MID, ws *wsend) {
	if ws.armed || !ws.outstanding() {
		return
	}
	ws.armed = true
	ws.timerGen++
	gen := ws.timerGen
	bytes := 0
	for _, fr := range ws.frames {
		n := len(fr.msg.payload) - fr.idx*fr.msg.fragSz
		if n > fr.msg.fragSz {
			n = fr.msg.fragSz
		}
		if n > 0 {
			bytes += n
		}
	}
	guard := e.wireTime(bytes) * 3
	if max := e.cfg.DeadAfter() / 2; guard > max {
		guard = max
	}
	wait := ws.interval + guard
	if len(ws.frames) > 0 {
		if drain := ws.frames[0].wireAt; drain > e.k.Now() {
			// The oldest outstanding fragment is still in our egress
			// queue; firing earlier would find nothing actionable (see
			// wRetransmit's in-egress check). Wait for the line plus one
			// retry interval for the answer to start back.
			if w := time.Duration(drain-e.k.Now()) + ws.interval; w > wait {
				wait = w
			}
		}
	}
	if at := ws.quietUntil; at > e.k.Now() {
		// Frames held by the reconnect quiet period have not reached the
		// wire; retrying before they could possibly be answered only
		// duplicates the backlog into the enforced silence.
		wait += time.Duration(at - e.k.Now())
	}
	if e.cfg.RetransJitter > 0 {
		wait += time.Duration(e.k.Rand().Int63n(int64(e.cfg.RetransJitter) + 1))
	}
	epoch := e.epoch
	e.k.After(wait, func() {
		if epoch != e.epoch || e.wout[dst] != ws || ws.timerGen != gen {
			return
		}
		ws.armed = false
		if !ws.outstanding() {
			return
		}
		if e.k.Now() >= ws.deadline {
			busy := ws.readyAt
			if ws.lineFreeAt > busy {
				busy = ws.lineFreeAt
			}
			if busy > e.k.Now() {
				// The silence is our own doing: a deep window's recovery
				// round serializes through the CPU and the single
				// transmitter for longer than DeadAfter, so frames the
				// peer could answer (including §5.2.3 probes) have not
				// all left yet. The no-response verdict only counts from
				// the moment the last of them is on the wire — and piling
				// another round onto the backlog would just deepen it.
				// This cannot defer death forever: each recovery round
				// adds at most wireTime(outstanding) to the backlog while
				// the timer waits interval + 3*wireTime(outstanding), so
				// a truly dead peer's backlog drains and the clock fires.
				ws.deadline = busy + e.cfg.DeadAfter()
				e.wArm(dst, ws)
				return
			}
			e.wPeerDead(dst, ws)
			return
		}
		e.wRetransmit(dst, ws)
	})
}

// wCancelTimer stops the recovery timer and resets the backoff, called on
// acknowledgement progress (go-back-N restarts the timer for the new oldest
// outstanding frame).
func (e *Endpoint) wCancelTimer(ws *wsend) {
	ws.timerGen++
	ws.armed = false
	ws.interval = e.cfg.RetransInterval
	ws.attempts = 0
}

// wRetransmit is one recovery round. Go-back-N re-sends every unacknowledged
// fragment in frame-sequence order; selective repeat halves the AIMD window
// (the timer fire is the loss evidence), then re-sends only the holes —
// fragments the receiver has not reported via SACK. When every fragment is
// acknowledged but a message completion is missing, both modes probe with
// the oldest incomplete message's final fragment — the duplicate triggers
// the receiver's cached-reply replay (§5.2.3).
func (e *Endpoint) wRetransmit(dst frame.MID, ws *wsend) {
	if len(ws.frames) > 0 && ws.frames[0].wireAt > e.k.Now() {
		// The oldest outstanding fragment's latest copy is still in our
		// egress queue (a deep window serializes for longer than the
		// timer's capped guard). Its silence proves nothing, and a
		// recovery round would only stack duplicates behind it — wait
		// for the line instead. Not counted as an attempt: no evidence,
		// no backoff, no AIMD decrease.
		e.wArm(dst, ws)
		return
	}
	e.totals.RetransTimer += e.cfg.Costs.RetransTimer
	ws.attempts++
	if e.cfg.RetransBackoff > 1 {
		// Retry rate decreases with attempts (§5.2.2), capped so a
		// live-but-lossy peer still sees several attempts per
		// death-detection window.
		ws.interval = time.Duration(float64(ws.interval) * e.cfg.RetransBackoff)
		if max := e.cfg.DeadAfter() / 6; ws.interval > max {
			ws.interval = max
		}
	}
	if e.selective() {
		e.wShrinkWindow(dst, ws)
	}
	if len(ws.frames) > 0 {
		if e.selective() {
			if ws.attempts >= 2 {
				// Anti-renege: two timer fires with no cumulative progress
				// means the SACK picture may be stale (or the receiver
				// evicted); distrust it and re-send everything unacked.
				for i := range ws.frames {
					ws.frames[i].sacked = false
				}
			}
			sent := false
			for i := range ws.frames {
				if ws.frames[i].sacked || ws.frames[i].wireAt > e.k.Now() {
					continue
				}
				e.wResendFrag(dst, ws, i, ws.attempts+1)
				sent = true
			}
			if !sent {
				// Everything outstanding is sacked yet cum never advanced:
				// the receiver's acks are being lost. Re-send the oldest
				// fragment; its duplicate provokes a fresh (high) cum ack.
				e.wResendFrag(dst, ws, 0, ws.attempts+1)
			}
		} else {
			for i := range ws.frames {
				if ws.frames[i].wireAt > e.k.Now() {
					continue
				}
				fr := ws.frames[i]
				e.iface.CountFragmentRetransmit()
				e.emit(EvFragRetransmit, dst, fr.seq, ws.attempts+1)
				ws.frames[i].wireAt = e.wTransmitFrag(dst, ws, fr.msg, fr.idx, fr.seq)
			}
		}
	}
	e.wProbeStarved(dst, ws)
	e.wArm(dst, ws)
}

// wProbeStarved re-sends the final fragment of the oldest unparked message
// that is fully transmitted and wholly frame-acknowledged yet still missing
// its completion ack — the duplicate provokes the receiver's cached-reply
// replay (§5.2.3) or an ErrReplyLost verdict. This must run even while
// younger messages have frames outstanding: the frame loops above only
// touch ws.frames, so on a busy pipeline a message whose completion ack
// was lost would otherwise never be probed — it starves behind the stream
// until the sender declares a live, acking peer dead. One probe per
// recovery round drains multiple stuck messages one at a time.
func (e *Endpoint) wProbeStarved(dst frame.MID, ws *wsend) {
	if ws.probeWireAt > e.k.Now() {
		return // the previous probe has not even left the wire yet
	}
	framed := make(map[*wmsg]bool, len(ws.frames))
	for _, fr := range ws.frames {
		framed[fr.msg] = true
	}
	for _, m := range ws.inflight {
		if m.parked || m.next < m.frags || framed[m] {
			continue
		}
		e.iface.CountFragmentRetransmit()
		e.emit(EvFragRetransmit, dst, m.lastSeq, ws.attempts+1)
		ws.probeWireAt = e.wTransmitFrag(dst, ws, m, m.frags-1, m.lastSeq)
		return
	}
}

// wResendFrag re-sends the hole at ws.frames[i] under selective repeat,
// counted both as a fragment retransmission (the shared recovery metric) and
// as a selective retransmission (the holes-only refinement).
func (e *Endpoint) wResendFrag(dst frame.MID, ws *wsend, i int, round int) {
	fr := ws.frames[i]
	e.iface.CountFragmentRetransmit()
	e.iface.CountSelectiveRetransmit()
	e.emit(EvSelectiveRetransmit, dst, fr.seq, round)
	ws.frames[i].wireAt = e.wTransmitFrag(dst, ws, fr.msg, fr.idx, fr.seq)
}

// wShrinkWindow applies the AIMD multiplicative decrease (floor 1) and
// resets the additive-increase credit.
func (e *Endpoint) wShrinkWindow(dst frame.MID, ws *wsend) {
	ws.cleanAcks = 0
	if ws.cwnd <= 1 {
		return
	}
	ws.cwnd /= 2
	e.iface.CountWindowDecrease()
	e.emit(EvWindowDecrease, dst, 0, ws.cwnd)
}

// wPeerDead fails every inflight and queued message and discards both sides
// of the connection state, mirroring the stop-and-wait peerDead.
func (e *Endpoint) wPeerDead(dst frame.MID, ws *wsend) {
	failed := append(append([]*wmsg(nil), ws.inflight...), ws.queue...)
	ws.inflight = nil
	ws.queue = nil
	ws.frames = nil
	ws.timerGen++
	e.iface.CountPeerDeadTimeout()
	e.emit(EvPeerDead, dst, 0, ws.attempts)
	e.emit(EvConnClose, dst, 0, 0)
	delete(e.wout, dst)
	delete(e.win, dst)
	// Quiet period before any reconnect: the peer may be alive (loss, not
	// death) with a receive record that only ConnLifetime of silence can
	// clear; restarting the sequence space into that record would desync
	// forever. The RetransInterval pad keeps the expiry comparison strict
	// even against frames still on the wire.
	if e.wquiet == nil {
		e.wquiet = make(map[frame.MID]sim.Time)
	}
	e.wquiet[dst] = e.k.Now() + e.cfg.ConnLifetime() + e.cfg.RetransInterval
	for _, m := range failed {
		m.done = true
		m.parkGen++
		if m.cb != nil {
			m.cb(Result{Kind: ResultPeerDead})
		}
	}
}

// wDropFrames removes m's fragments from the unacknowledged-frame list.
func (e *Endpoint) wDropFrames(ws *wsend, m *wmsg) {
	kept := ws.frames[:0]
	for _, fr := range ws.frames {
		if fr.msg != m {
			kept = append(kept, fr)
		}
	}
	ws.frames = kept
}

// wProcess dispatches one received frame in windowed mode. While fragments
// are unacknowledged, any frame heard proves the peer alive and restarts the
// no-response clock (§5.2.2). In the pure-probe state (every fragment
// cumulatively acknowledged, only message completions missing) a bare frame
// is NOT proof of progress: a receiver whose record expired mid-connection
// answers probes with cumulative acks forever but can never complete the
// message, so only a completion, a NACK, or a busy signal — handled in their
// dispatch paths below — restarts the clock. This mirrors stop-and-wait,
// where a duplicate of an unanswerable frame earns silence and the sender's
// death clock runs out.
func (e *Endpoint) wProcess(f *frame.TransportFrame) {
	if ws := e.wout[f.Src]; ws != nil && len(ws.frames) > 0 && !e.wQuiet(ws) {
		// Monotone refresh only: a reconnect sets the deadline past the
		// quiet period, and a straggler frame must never pull it back
		// below the first moment the new connection can transmit.
		if d := e.k.Now() + e.cfg.DeadAfter(); d > ws.deadline {
			ws.deadline = d
		}
	}
	switch f.Kind {
	case frame.TransportFrag:
		e.wHandleFrag(f.Src, f)
	case frame.TransportFragAck, frame.TransportAck, frame.TransportNack:
		// Acknowledgement traffic arriving inside the reconnect quiet
		// period is addressed to the DEAD connection: nothing of the new
		// sequence space has reached the wire, so there is nothing these
		// frames could legitimately acknowledge. Applying them would
		// alias the old generation's cumulative point onto the new
		// space — silently releasing fragments that were never sent.
		if e.wQuiet(e.wout[f.Src]) {
			return
		}
		switch f.Kind {
		case frame.TransportFragAck:
			e.wHandleFragAck(f.Src, f)
		case frame.TransportAck:
			e.wHandleMsgAck(f.Src, f)
		case frame.TransportNack:
			e.wHandleNack(f.Src, f)
		}
	}
	// TransportData toward a windowed endpoint would mean a mixed-mode
	// network, which is unsupported; such frames fall through and drop.
}

// wQuiet reports whether the outbound connection toward a peer is inside
// its reconnect quiet period: no frame of the restarted sequence space has
// left yet, so inbound acknowledgements can only belong to the previous,
// dead connection.
func (e *Endpoint) wQuiet(ws *wsend) bool {
	return ws != nil && e.k.Now() < ws.quietUntil
}

// wAckAdvance releases every fragment covered by the cumulative point and
// reports whether anything was released. It has no timing side effects: a
// no-progress ack must leave the send state — including the wsend.readyAt
// virtual-time serializer — completely untouched, or every duplicate ack
// would charge phantom CPU time (the spurious-retransmit cliff the
// regression test in window_test.go pins).
func (e *Endpoint) wAckAdvance(ws *wsend, cum uint8) bool {
	progress := false
	for len(ws.frames) > 0 && seqLE(ws.frames[0].seq, cum) {
		ws.frames = ws.frames[1:]
		progress = true
	}
	return progress
}

// wHandleCumAck applies a cumulative frame acknowledgement (standalone or
// piggybacked) and, on progress, lets admission and transmission resume.
// Reports whether the cumulative point advanced.
func (e *Endpoint) wHandleCumAck(src frame.MID, cum uint8) bool {
	ws := e.wout[src]
	if ws == nil || e.wQuiet(ws) {
		// The quiet guard covers piggybacked acks riding inbound FRAGs;
		// standalone acknowledgement frames are dropped in wProcess.
		return false
	}
	if !e.wAckAdvance(ws, cum) {
		return false
	}
	ws.dupAcks = 0
	e.wCancelTimer(ws)
	e.wPump(src, ws)
	return true
}

// wHandleFragAck processes a standalone FRAGACK: cumulative release, SACK
// marking, and — selective mode only — duplicate-ack counting toward fast
// retransmit. Only standalone acks count as duplicates: they are the
// receiver's explicit "still stuck at cum" signal, whereas piggybacked acks
// repeat cum on every reverse fragment as a matter of course.
func (e *Endpoint) wHandleFragAck(src frame.MID, f *frame.TransportFrame) {
	ws := e.wout[src]
	if ws == nil {
		return
	}
	if e.selective() && f.SackBits != 0 {
		for i := range ws.frames {
			d := ws.frames[i].seq - (f.Seq + 2)
			if d < sackSpan && f.SackBits&(1<<d) != 0 {
				ws.frames[i].sacked = true
			}
		}
	}
	if e.wHandleCumAck(src, f.Seq) {
		return
	}
	if !e.selective() || len(ws.frames) == 0 {
		return
	}
	if ws.dupAcks > 0 && ws.dupCum == f.Seq {
		ws.dupAcks++
	} else {
		ws.dupCum = f.Seq
		ws.dupAcks = 1
	}
	if ws.dupAcks < fastRetransmitDupAcks {
		return
	}
	ws.dupAcks = 0
	// Fast retransmit: re-send the holes below the highest SACKed
	// fragment — those are provably lost, not merely late, because the
	// receiver holds their successors. Without SACK evidence (duplicate
	// data can also produce dup acks) fall back to the oldest fragment.
	hi := -1
	for i, fr := range ws.frames {
		if fr.sacked {
			hi = i
		}
	}
	resent := false
	if hi >= 0 {
		for i := range ws.frames[:hi] {
			if !ws.frames[i].sacked && ws.frames[i].wireAt <= e.k.Now() {
				e.wResendFrag(src, ws, i, 1)
				resent = true
			}
		}
	}
	if !resent && ws.frames[0].wireAt <= e.k.Now() {
		e.wResendFrag(src, ws, 0, 1)
	}
	// No multiplicative decrease here: on this wire loss is random, not
	// congestive, so a dup-ack-repaired hole says nothing the window
	// size could fix — only the slower recovery-timer path (pipeline
	// actually stalled for a full drain + interval) shrinks cwnd.
	// The retransmission deserves a fresh round trip before the timer
	// can fire and trigger a full recovery round.
	e.wCancelTimer(ws)
	e.wArm(src, ws)
}

// wHandleMsgAck completes the acknowledged message: its fragments are
// released, its callback runs with any piggybacked reply, and the window
// opens for the next queued message.
func (e *Endpoint) wHandleMsgAck(src frame.MID, f *frame.TransportFrame) {
	if f.AckPresent {
		e.wHandleCumAck(src, f.AckSeq)
	}
	ws := e.wout[src]
	if ws == nil {
		return
	}
	m := ws.take(f.Seq)
	if m == nil {
		return // duplicate ack of an already-completed message
	}
	// A completion is real progress — it restarts the no-response clock
	// even in the probe state, where wProcess deliberately does not.
	ws.deadline = e.k.Now() + e.cfg.DeadAfter()
	e.wDropFrames(ws, m)
	e.emit(EvAckRx, src, f.Seq, 0)
	if e.selective() && ws.cwnd < e.window() {
		// Additive increase: one window's worth of clean completions —
		// roughly one loss-free round trip — earns one more message of
		// cwnd, never past the operator's ceiling.
		ws.cleanAcks++
		if ws.cleanAcks >= ws.cwnd {
			ws.cleanAcks = 0
			ws.cwnd++
			e.iface.CountWindowIncrease()
			e.emit(EvWindowIncrease, src, 0, ws.cwnd)
		}
	}
	if m.cb != nil {
		m.cb(Result{Kind: ResultAcked, Reply: f.Payload})
	}
	e.wCancelTimer(ws)
	e.wPump(src, ws)
}

// wHandleNack processes a message-level negative acknowledgement. BUSY parks
// the message for the slower busy-retry interval (§5.2.3) — its fragments
// are dropped from the recovery set because the receiver provably assembled
// the whole message before refusing it, and the retry re-fragments from the
// start with fresh frame sequences. Error NACKs consume the message.
func (e *Endpoint) wHandleNack(src frame.MID, f *frame.TransportFrame) {
	ws := e.wout[src]
	if ws == nil {
		return
	}
	msgSeq := f.Seq
	if f.Err == frame.NackBusy {
		var m *wmsg
		for _, c := range ws.inflight {
			if c.msgSeq == msgSeq {
				m = c
				break
			}
		}
		if m == nil || m.parked {
			return
		}
		ws.deadline = e.k.Now() + e.cfg.DeadAfter()
		e.emit(EvBusyRetry, src, msgSeq, 0)
		m.parked = true
		m.parkGen++
		m.next = 0
		e.wDropFrames(ws, m)
		gen := m.parkGen
		epoch := e.epoch
		e.k.After(e.cfg.BusyRetryInterval, func() {
			if epoch != e.epoch || e.wout[src] != ws || m.done ||
				!m.parked || m.parkGen != gen {
				return
			}
			m.parked = false
			e.wPump(src, ws)
		})
		e.wCancelTimer(ws)
		e.wArm(src, ws) // still covers the other in-flight messages
		return
	}
	m := ws.take(msgSeq)
	if m == nil {
		return
	}
	// An error NACK is a definitive (if negative) answer: progress for the
	// no-response clock, letting the probe loop drain multiple stuck
	// messages one per round without tripping peer-dead.
	ws.deadline = e.k.Now() + e.cfg.DeadAfter()
	e.wDropFrames(ws, m)
	if m.cb != nil {
		m.cb(Result{Kind: ResultError, Err: f.Err})
	}
	e.wCancelTimer(ws)
	e.wPump(src, ws)
}

// wHandleFrag is the receive side: frame acceptance against the cumulative
// point, reassembly of the contiguous stream, duplicate replay from the
// reply cache, and buffering of completed messages for in-order delivery.
// Go-back-N drops anything out of order; selective repeat banks it in the
// bounded per-peer ooo buffer and answers with a SACK so the sender learns
// the exact holes. Payloads are always copied out of the shared bus buffer —
// delivery (and ooo draining) happens on a later event, past the buffer's
// lifetime.
func (e *Endpoint) wHandleFrag(src frame.MID, f *frame.TransportFrame) {
	if f.AckPresent {
		e.wHandleCumAck(src, f.AckSeq)
	}
	wr := e.wrecvFor(src)
	wr.lastHeard = e.k.Now()
	if !wr.valid {
		// "Take any SN" adoption (§5.2.2) — but only a message-initial
		// fragment can start a fresh record; a mid-message fragment waits
		// for the sender's recovery pass to wrap back to the start.
		if f.FragIndex != 0 {
			return
		}
		wr.valid = true
		wr.cum = f.Seq
		wr.next = f.MsgSeq
	} else {
		switch {
		case f.Seq == wr.cum+1:
			wr.cum++
		case seqLE(f.Seq, wr.cum):
			// Duplicate: our acknowledgement was lost. A duplicate of a
			// message's final fragment may also be the sender probing for
			// a lost completion ack — replay it from the cache.
			if f.FragEnd {
				if cr, ok := wr.cache[f.MsgSeq]; ok {
					e.wReplay(src, f.MsgSeq, cr)
					return
				}
				if wr.skipped[f.MsgSeq] || seqLT(f.MsgSeq, wr.next) {
					// The message was consumed but its cached reply is
					// gone — the record expired and was re-adopted, or
					// the cache was evicted. No probe can ever be
					// answered; tell the sender so instead of dup-acking
					// it into a livelock.
					e.wSendMsgNack(src, f.MsgSeq, frame.ErrReplyLost)
					return
				}
			}
			if e.selective() {
				// A duplicate means the sender is retransmitting blind;
				// answer immediately (with SACK state) rather than
				// waiting out the piggyback delay.
				e.wSendFragAck(src, wr)
			} else {
				e.wScheduleCumAck(src, wr)
			}
			return
		default:
			if e.selective() {
				e.wBufferOOO(src, wr, f)
			} else {
				// Gap: go-back-N receivers drop out-of-order fragments;
				// the cumulative ack tells the sender where to resume.
				e.wScheduleCumAck(src, wr)
			}
			return
		}
	}
	e.wAcceptStream(src, wr, f.MsgSeq, f.FragIndex, f.FragEnd, f.Urgent, f.Payload)
	if e.selective() {
		// The hole just filled; drain every now-contiguous banked
		// fragment into the assembly stream, in sequence order.
		for {
			of, ok := wr.ooo[wr.cum+1]
			if !ok {
				break
			}
			delete(wr.ooo, wr.cum+1)
			wr.cum++
			e.wAcceptStream(src, wr, of.msgSeq, of.idx, of.end, of.urgent, of.payload)
		}
	}
}

// wAcceptStream advances the contiguous reassembly stream by one fragment
// that is now in order (fresh off the wire, or drained from the ooo buffer)
// and already accounted for in wr.cum.
func (e *Endpoint) wAcceptStream(src frame.MID, wr *wrecv, msgSeq, fragIdx uint8, end, urgent bool, payload []byte) {
	if wr.asmOpen && (wr.asmSeq != msgSeq || wr.asmIdx != int(fragIdx)) {
		// The sender restarted the message (busy retry) or moved on;
		// whatever was accumulating is void.
		wr.asmOpen = false
		wr.asm = nil
	}
	if !wr.asmOpen {
		if fragIdx != 0 {
			// Mid-message fragment with no open assembly: the stream
			// position is consumed but the content is unusable; the
			// sender recovers at the message level (probe → replay or
			// busy retry from fragment zero).
			e.wScheduleCumAck(src, wr)
			return
		}
		wr.asmOpen = true
		wr.asmSeq = msgSeq
		wr.asmIdx = 0
		wr.asm = nil
	}
	wr.asmIdx++
	if !end {
		wr.asm = append(wr.asm, payload...)
		e.wScheduleCumAck(src, wr)
		return
	}
	wr.asmOpen = false
	full := append(wr.asm, payload...) // copies out of the bus buffer
	wr.asm = nil
	if cr, ok := wr.cache[msgSeq]; ok {
		// A full re-delivery of an answered message (busy retry whose
		// first delivery was consumed, with the answer lost): replay.
		e.wReplay(src, msgSeq, cr)
		return
	}
	if wr.skipped[msgSeq] || seqLT(msgSeq, wr.next) {
		e.wScheduleCumAck(src, wr)
		return // stale incarnation of an already-consumed message
	}
	if wr.buffered == nil {
		wr.buffered = make(map[uint8]*winMsg)
	}
	wr.buffered[msgSeq] = &winMsg{payload: full, urgent: urgent}
	e.wScheduleCumAck(src, wr)
	e.wTryDeliver(src, wr)
}

// wBufferOOO banks an out-of-order fragment for later draining (selective
// mode) and answers with an immediate SACK-bearing duplicate ack — the
// sender's fast-retransmit signal. Beyond-horizon fragments (impossible
// from a compliant sender) are dropped like go-back-N. The buffer is
// bounded by maxOOOFrags; when full, the fragment farthest ahead of the
// cumulative point is the one discarded (deterministic, and the safest
// choice: far fragments are the last the drain could ever use, and the
// sender's un-released frames re-send them if the SACK never covers them).
func (e *Endpoint) wBufferOOO(src frame.MID, wr *wrecv, f *frame.TransportFrame) {
	dist := f.Seq - wr.cum
	if dist < 2 || dist >= 2+sackSpan {
		e.wScheduleCumAck(src, wr)
		return
	}
	if _, ok := wr.ooo[f.Seq]; !ok {
		drop := false
		if len(wr.ooo) >= maxOOOFrags {
			worstSeq, worstDist := f.Seq, dist
			for _, seq := range sortediter.Keys(wr.ooo) {
				if d := seq - wr.cum; d > worstDist {
					worstSeq, worstDist = seq, d
				}
			}
			if worstSeq == f.Seq {
				drop = true
			} else {
				delete(wr.ooo, worstSeq)
			}
		}
		if !drop {
			if wr.ooo == nil {
				wr.ooo = make(map[uint8]oooFrag)
			}
			wr.ooo[f.Seq] = oooFrag{
				msgSeq:  f.MsgSeq,
				idx:     f.FragIndex,
				end:     f.FragEnd,
				urgent:  f.Urgent,
				payload: append([]byte(nil), f.Payload...),
			}
		}
	}
	e.wSendFragAck(src, wr)
}

// sackBits builds the SACK bitmap over the ooo buffer: bit i set means
// frame sequence cum+2+i is banked (cum+1 is the hole by definition).
func (wr *wrecv) sackBits() uint64 {
	if len(wr.ooo) == 0 {
		return 0
	}
	var bits uint64
	for _, seq := range sortediter.Keys(wr.ooo) {
		if d := seq - wr.cum; d >= 2 && d < 2+sackSpan {
			bits |= 1 << (d - 2)
		}
	}
	return bits
}

// sackBlockCount counts the contiguous runs of set bits — the "SACK blocks"
// the stats layer reports.
func sackBlockCount(bits uint64) int {
	n := 0
	prev := false
	for i := 0; i < sackSpan; i++ {
		cur := bits&(1<<i) != 0
		if cur && !prev {
			n++
		}
		prev = cur
	}
	return n
}

// wTryDeliver hands the next deliverable buffered message to the upper
// layer. Delivery is strictly in message-sequence order, with one exception:
// while the head message is busy-refused (busyWait), the serially-lowest
// URGENT buffered message may overtake — a kernel reply must never be
// blocked behind a busy-parked request (§5.2.2's no-deadlock rule). One
// delivery is outstanding at a time; the verdict (wConsume) triggers the
// next. The upper-layer hook runs on a fresh event so a verdict arriving
// via ResolveHold cannot reenter OnData from client context.
func (e *Endpoint) wTryDeliver(src frame.MID, wr *wrecv) {
	if wr.delivering {
		return
	}
	for wr.skipped[wr.next] {
		delete(wr.skipped, wr.next)
		wr.next++
		wr.busyWait = false
	}
	seq := wr.next
	m := wr.buffered[seq]
	if m == nil && wr.busyWait {
		bestDist := -1
		for _, k := range sortediter.Keys(wr.buffered) {
			if !wr.buffered[k].urgent {
				continue
			}
			d := int(k - wr.next) // serial distance past the head
			if bestDist < 0 || d < bestDist {
				bestDist = d
				seq = k
			}
		}
		if bestDist >= 0 {
			m = wr.buffered[seq]
		}
	}
	if m == nil {
		return
	}
	delete(wr.buffered, seq)
	wr.delivering = true
	payload := m.payload
	msgSeq := seq
	epoch := e.epoch
	e.k.After(0, func() {
		if epoch != e.epoch {
			return
		}
		dec := e.hooks.OnData(src, payload)
		e.wApplyVerdict(src, msgSeq, dec)
	})
}

// wApplyVerdict is the windowed counterpart of applyVerdict: it disposes of
// a delivered message per the upper layer's decision.
func (e *Endpoint) wApplyVerdict(src frame.MID, msgSeq uint8, dec Decision) {
	wr := e.wrecvFor(src)
	switch dec.Verdict {
	case VerdictAck:
		e.wConsume(src, wr, msgSeq, cachedReply{kind: replyAck, payload: dec.Reply})
		e.wSendMsgAck(src, msgSeq, dec.Reply)
	case VerdictError:
		e.wConsume(src, wr, msgSeq, cachedReply{kind: replyNack, err: dec.Err})
		e.wSendMsgNack(src, msgSeq, dec.Err)
	case VerdictAckDeferred:
		// No piggyback rides a windowed completion ack, so the deferral
		// degrades to a plain ack after one ack-delay (A).
		e.wConsume(src, wr, msgSeq, cachedReply{kind: replyAck})
		epoch := e.epoch
		e.k.After(e.cfg.A, func() {
			if epoch != e.epoch {
				return
			}
			e.wSendMsgAck(src, msgSeq, nil)
		})
	case VerdictBusy:
		// Not consumed: the sender re-fragments after its busy-retry
		// interval; meanwhile urgent buffered messages may overtake.
		wr.delivering = false
		wr.busyWait = true
		e.wSendMsgNack(src, msgSeq, frame.NackBusy)
		e.wTryDeliver(src, wr)
	case VerdictHold:
		h := &held{seq: msgSeq, expiry: dec.ExpiryVerdict}
		e.holds[src] = h
		timeout := dec.HoldTimeout
		if timeout < 0 {
			return // no auto expiry; the upper layer owns the hold
		}
		if timeout == 0 {
			timeout = e.cfg.A
		}
		if h.expiry == 0 {
			h.expiry = VerdictAck
		}
		gen := h.gen
		epoch := e.epoch
		e.k.After(timeout, func() {
			if epoch != e.epoch || e.holds[src] != h || h.gen != gen {
				return
			}
			delete(e.holds, src)
			e.wApplyVerdict(src, msgSeq, Decision{Verdict: h.expiry})
			if e.hooks.OnHoldExpired != nil {
				e.hooks.OnHoldExpired(src, h.expiry)
			}
		})
	default:
		panic("deltat: invalid verdict in windowed mode")
	}
}

// wConsume records a consuming verdict: delivery order advances, the reply
// is cached for duplicate replay, and the next buffered message (if any)
// is handed up.
func (e *Endpoint) wConsume(src frame.MID, wr *wrecv, msgSeq uint8, cr cachedReply) {
	wr.delivering = false
	if msgSeq == wr.next {
		wr.next++
		wr.busyWait = false
	} else {
		// An urgent message consumed ahead of order during busyWait; the
		// head pointer skips it when it finally advances.
		if wr.skipped == nil {
			wr.skipped = make(map[uint8]bool)
		}
		wr.skipped[msgSeq] = true
	}
	if wr.cache == nil {
		wr.cache = make(map[uint8]cachedReply)
	}
	if _, ok := wr.cache[msgSeq]; !ok {
		wr.cacheAge = append(wr.cacheAge, msgSeq)
		if len(wr.cacheAge) > replyCacheCap {
			delete(wr.cache, wr.cacheAge[0])
			wr.cacheAge = wr.cacheAge[1:]
		}
	}
	wr.cache[msgSeq] = cr
	e.wTryDeliver(src, wr)
}

// wReplay re-answers a duplicate of a consumed message from the cache.
func (e *Endpoint) wReplay(src frame.MID, msgSeq uint8, cr cachedReply) {
	switch cr.kind {
	case replyAck:
		e.wSendMsgAck(src, msgSeq, cr.payload)
	case replyNack:
		e.wSendMsgNack(src, msgSeq, cr.err)
	}
}

// wSendMsgAck transmits a message-completion acknowledgement, doubling as
// the cumulative fragment acknowledgement for the link.
func (e *Endpoint) wSendMsgAck(dst frame.MID, msgSeq uint8, reply []byte) {
	e.emit(EvAckTx, dst, msgSeq, 0)
	d := e.chargeSend(false, 0)
	epoch := e.epoch
	e.k.After(d, func() {
		if epoch != e.epoch {
			return
		}
		f := &frame.TransportFrame{
			Kind:     frame.TransportAck,
			Src:      e.mid,
			Dst:      dst,
			Seq:      msgSeq,
			ConnOpen: true,
			Payload:  reply,
		}
		if wr := e.win[dst]; wr != nil && wr.valid {
			f.AckPresent = true
			f.AckSeq = wr.cum
			wr.ackGen++
			wr.ackPending = false
			e.iface.CountCumulativeAck()
			e.emit(EvCumAck, dst, wr.cum, 0)
		}
		e.transmit(f)
	})
}

// wSendMsgNack transmits a message-level negative acknowledgement (BUSY or
// an error code), also carrying the cumulative fragment acknowledgement.
func (e *Endpoint) wSendMsgNack(dst frame.MID, msgSeq uint8, code frame.ErrCode) {
	d := e.chargeSend(false, 0)
	epoch := e.epoch
	e.k.After(d, func() {
		if epoch != e.epoch {
			return
		}
		f := &frame.TransportFrame{
			Kind:     frame.TransportNack,
			Src:      e.mid,
			Dst:      dst,
			Seq:      msgSeq,
			ConnOpen: true,
			Err:      code,
		}
		if wr := e.win[dst]; wr != nil && wr.valid {
			f.AckPresent = true
			f.AckSeq = wr.cum
			wr.ackGen++
			wr.ackPending = false
			e.iface.CountCumulativeAck()
			e.emit(EvCumAck, dst, wr.cum, 0)
		}
		e.transmit(f)
	})
}

// wScheduleCumAck arranges a standalone cumulative fragment acknowledgement
// after a short wait — long enough for an imminent message-completion ack or
// reverse fragment to carry the cumulative ack for free (§5.2.3's piggyback
// preference), but well inside the sender's retransmission guard.
func (e *Endpoint) wScheduleCumAck(src frame.MID, wr *wrecv) {
	if wr.ackPending {
		return
	}
	wr.ackPending = true
	wr.ackGen++
	gen := wr.ackGen
	delay := e.cfg.A + 2*e.wireTime(e.wFragSize(0))
	epoch := e.epoch
	e.k.After(delay, func() {
		if epoch != e.epoch || e.win[src] != wr || wr.ackGen != gen || !wr.ackPending {
			return
		}
		wr.ackPending = false
		d := e.chargeSend(false, 0)
		e.k.After(d, func() {
			if epoch != e.epoch {
				return
			}
			e.wTransmitFragAck(src, wr)
		})
	})
}

// wSendFragAck transmits a standalone FRAGACK immediately (after the send
// charge), superseding any delayed ack pending. Selective receivers use it
// for every duplicate and out-of-order arrival: the prompt, SACK-bearing
// answer is what drives the sender's hole picture and its duplicate-ack
// fast-retransmit counter.
func (e *Endpoint) wSendFragAck(src frame.MID, wr *wrecv) {
	wr.ackPending = false
	wr.ackGen++
	d := e.chargeSend(false, 0)
	epoch := e.epoch
	e.k.After(d, func() {
		if epoch != e.epoch || e.win[src] != wr || !wr.valid {
			return
		}
		e.wTransmitFragAck(src, wr)
	})
}

// wTransmitFragAck builds and transmits the standalone FRAGACK from the
// receiver's current state: cumulative point plus — selective mode — the
// SACK bitmap over the ooo buffer (zero bitmap encodes as a plain
// cumulative ack, so the go-back-N wire is byte-identical to PR-5).
func (e *Endpoint) wTransmitFragAck(src frame.MID, wr *wrecv) {
	bits := wr.sackBits()
	e.iface.CountCumulativeAck()
	e.emit(EvCumAck, src, wr.cum, 0)
	if bits != 0 {
		blocks := sackBlockCount(bits)
		e.iface.CountSackBlocks(blocks)
		e.emit(EvSackTx, src, wr.cum, blocks)
	}
	e.transmit(&frame.TransportFrame{
		Kind:     frame.TransportFragAck,
		Src:      e.mid,
		Dst:      src,
		Seq:      wr.cum,
		SackBits: bits,
		ConnOpen: true,
	})
}

// Sliding-window engine for the Delta-t endpoint (Config.Window > 1).
//
// The stop-and-wait transport in deltat.go admits one outstanding DATA frame
// per direction, which caps bulk throughput at one frame per round trip. The
// windowed mode keeps every Delta-t property — timer-based connection
// records, duplicate suppression, death detection by silence, the busy/urgent
// no-deadlock rule — but pipelines traffic two ways:
//
//   - up to Config.Window reliable MESSAGES may be unacknowledged toward one
//     destination at once (the window is counted in messages, matching the
//     paper's per-request accounting);
//   - each message is cut into FRAG frames of at most FragSize payload
//     bytes, numbered in a per-link frame-sequence stream that the receiver
//     acknowledges cumulatively (go-back-N).
//
// Frame sequence numbers and message sequence numbers are uint8 serial
// numbers; correctness requires the outstanding span to stay below half the
// space, which maxInflightFrags and maxWindowMessages guarantee.
//
// Loss recovery is go-back-N: the receiver only accepts the next in-order
// frame sequence, and the sender's single per-destination timer re-sends
// every unacknowledged fragment. Message completion is signalled separately
// by a TransportAck carrying the message sequence (and any reply payload),
// exactly like the stop-and-wait path — so a lost completion ack is
// recovered by the §5.2.3 cached-reply replay when a duplicate of the
// message's final fragment arrives.
//
// Window=1 configurations never reach this file: every entry point is gated
// on Endpoint.windowed(), keeping the default path bit-identical to the
// pre-window transport.
package deltat

import (
	"time"

	"soda/internal/frame"
	"soda/internal/sim"
	"soda/internal/sortediter"
)

// DefaultFragSize is the FRAG payload cap when Config.FragSize is unset.
// 1024 keeps a full-size fragment close to the thesis's maximum Megalink
// frame while cutting a 1000-word message into just two frames.
const DefaultFragSize = 1024

const (
	// maxWindowMessages clamps Config.Window so message sequence numbers
	// stay within half the uint8 serial space.
	maxWindowMessages = 32
	// maxInflightFrags bounds unacknowledged FRAG frames per destination,
	// keeping frame sequence numbers within half the serial space.
	maxInflightFrags = 64
	// maxFragsPerMsg bounds fragments per message (FragIndex is uint8);
	// larger messages get a proportionally larger effective FragSize.
	maxFragsPerMsg = 256
	// replyCacheCap bounds the per-peer cache of message replies kept for
	// duplicate replay: twice the window, so a reply outlives every
	// message the sender can still be probing for.
	replyCacheCap = 2 * maxWindowMessages
)

// seqLE reports a <= b in uint8 serial-number order, valid while the live
// span stays under half the sequence space.
func seqLE(a, b uint8) bool { return b-a < 128 }

// seqLT is strict serial-number order.
func seqLT(a, b uint8) bool { return a != b && seqLE(a, b) }

// wmsg is one reliable message in the windowed outbox.
type wmsg struct {
	msgSeq  uint8
	payload []byte
	cb      func(Result)
	urgent  bool
	fragSz  int
	frags   int
	next    int   // next fragment index of the current transmission pass
	lastSeq uint8 // frame seq of the final fragment, for probe duplicates
	parked  bool  // busy-parked awaiting the slow retry
	parkGen int
	done    bool // completed; stale scheduled work checks it
}

// wfrag is one unacknowledged FRAG transmission.
type wfrag struct {
	seq uint8
	msg *wmsg
	idx int
}

// wsend is the per-destination windowed send state.
type wsend struct {
	queue    []*wmsg // admitted when the window opens
	inflight []*wmsg // unacknowledged messages, message-sequence order
	frames   []wfrag // unacknowledged fragments, frame-sequence order
	nextMsg  uint8
	nextSeq  uint8
	stalled  bool // window-full edge already counted
	// readyAt serializes fragment CPU charges: the kernel processor
	// copies one buffer at a time, so a burst of fragments reaches the
	// bus in sequence order even though their per-byte copy charges
	// differ. Without this, a smaller final fragment would overtake its
	// predecessor and the in-order receiver would see a permanent gap.
	readyAt sim.Time
	// lineFreeAt paces fragment submissions to the line rate: the node
	// has one transmitter, so fragment k+1 is handed to the medium only
	// once fragment k has left the wire. Without pacing, a window's worth
	// of fragments floods the bus FIFO at CPU speed and the peer's
	// acknowledgements queue behind the whole burst, collapsing the
	// pipeline into a batch round trip.
	lineFreeAt sim.Time
	deadline   sim.Time
	interval   time.Duration
	attempts   int
	timerGen   int
	armed      bool
}

// sendable returns the message whose fragment should transmit next: the one
// mid-pass, else the earliest admitted message not yet started (a fresh
// admission or a busy retry). Never interleaving fragments of two messages
// keeps each message's fragments contiguous in the frame-sequence stream,
// which the receiver's single reassembly buffer relies on.
func (ws *wsend) sendable() *wmsg {
	var restart *wmsg
	for _, m := range ws.inflight {
		if m.parked || m.next >= m.frags {
			continue
		}
		if m.next > 0 {
			return m
		}
		if restart == nil {
			restart = m
		}
	}
	return restart
}

// outstanding reports whether anything toward the peer still awaits
// acknowledgement (parked messages wait on their own retry timer).
func (ws *wsend) outstanding() bool {
	if len(ws.frames) > 0 {
		return true
	}
	for _, m := range ws.inflight {
		if !m.parked {
			return true
		}
	}
	return false
}

// take removes and returns the inflight message with msgSeq, or nil.
func (ws *wsend) take(msgSeq uint8) *wmsg {
	for i, m := range ws.inflight {
		if m.msgSeq == msgSeq {
			ws.inflight = append(ws.inflight[:i], ws.inflight[i+1:]...)
			m.done = true
			m.parked = false
			m.parkGen++
			return m
		}
	}
	return nil
}

// winMsg is a fully reassembled message awaiting in-order delivery.
type winMsg struct {
	payload []byte
	urgent  bool
}

// wrecv is the per-peer windowed receive state.
type wrecv struct {
	valid     bool
	cum       uint8 // highest in-order frame sequence received
	next      uint8 // next message sequence to deliver
	lastHeard sim.Time

	// Reassembly of the (single) message currently arriving in the
	// contiguous frame stream.
	asmOpen bool
	asmSeq  uint8
	asmIdx  int
	asm     []byte

	buffered map[uint8]*winMsg // reassembled, not yet delivered
	skipped  map[uint8]bool    // delivered ahead of order during busyWait

	delivering bool // one upper-layer verdict outstanding at a time
	busyWait   bool // head message busy-refused; urgent may overtake

	// Cached replies for duplicate replay (§5.2.3), evicted FIFO.
	cache    map[uint8]cachedReply
	cacheAge []uint8

	ackPending bool // standalone FRAGACK scheduled
	ackGen     int
}

// window is the clamped message-window depth.
func (e *Endpoint) window() int {
	w := e.cfg.Window
	if w > maxWindowMessages {
		w = maxWindowMessages
	}
	return w
}

// wFragSize is the effective fragment payload cap for a message of n bytes.
func (e *Endpoint) wFragSize(n int) int {
	fs := e.cfg.FragSize
	if fs <= 0 {
		fs = DefaultFragSize
	}
	if n > fs*maxFragsPerMsg {
		fs = (n + maxFragsPerMsg - 1) / maxFragsPerMsg
	}
	return fs
}

func (e *Endpoint) wsendFor(dst frame.MID) *wsend {
	ws := e.wout[dst]
	if ws == nil {
		ws = &wsend{}
		if e.wout == nil {
			e.wout = make(map[frame.MID]*wsend)
		}
		e.wout[dst] = ws
		if e.win[dst] == nil {
			e.emit(EvConnOpen, dst, 0, 0)
		}
	}
	return ws
}

// wrecvFor returns the receive record for src, applying the lazy Delta-t
// expiry: after ConnLifetime of silence with nothing pending, the record
// lapses and any sequence number is accepted again ("take any SN", §5.2.2).
func (e *Endpoint) wrecvFor(src frame.MID) *wrecv {
	wr := e.win[src]
	now := e.k.Now()
	if wr == nil {
		wr = &wrecv{lastHeard: now}
		if e.win == nil {
			e.win = make(map[frame.MID]*wrecv)
		}
		e.win[src] = wr
		if e.wout[src] == nil {
			e.emit(EvConnOpen, src, 0, 0)
		}
		return wr
	}
	_, holding := e.holds[src]
	if wr.valid && !holding && !wr.delivering && len(wr.buffered) == 0 &&
		now-wr.lastHeard > e.cfg.ConnLifetime() {
		e.emit(EvConnExpire, src, wr.cum, 0)
		*wr = wrecv{lastHeard: wr.lastHeard}
	}
	return wr
}

// wEnqueue queues payload as one reliable windowed message toward dst.
// Urgent messages (kernel replies) jump ahead of queued ordinary traffic,
// mirroring the stop-and-wait urgency rule.
func (e *Endpoint) wEnqueue(dst frame.MID, payload []byte, cb func(Result), urgent bool) {
	if e.crashed {
		return
	}
	ws := e.wsendFor(dst)
	m := &wmsg{payload: payload, cb: cb, urgent: urgent}
	if urgent {
		pos := 0
		for pos < len(ws.queue) && ws.queue[pos].urgent {
			pos++
		}
		ws.queue = append(ws.queue, nil)
		copy(ws.queue[pos+1:], ws.queue[pos:])
		ws.queue[pos] = m
	} else {
		ws.queue = append(ws.queue, m)
	}
	e.wPump(dst, ws)
}

// wPump admits queued messages while the window is open and transmits
// fragments while the fragment budget allows, then makes sure the recovery
// timer covers whatever is outstanding.
func (e *Endpoint) wPump(dst frame.MID, ws *wsend) {
	for {
		m := ws.sendable()
		if m == nil {
			if len(ws.queue) == 0 {
				break
			}
			if len(ws.inflight) >= e.window() {
				if !ws.stalled {
					ws.stalled = true
					e.iface.CountWindowFill()
					e.emit(EvWindowFill, dst, ws.nextMsg, len(ws.inflight))
				}
				break
			}
			m = ws.queue[0]
			ws.queue = ws.queue[1:]
			ws.stalled = false
			m.msgSeq = ws.nextMsg
			ws.nextMsg++
			m.fragSz = e.wFragSize(len(m.payload))
			m.frags = (len(m.payload) + m.fragSz - 1) / m.fragSz
			if m.frags == 0 {
				m.frags = 1 // empty payload still takes one fragment
			}
			if len(ws.inflight) == 0 && len(ws.frames) == 0 {
				ws.deadline = e.k.Now() + e.cfg.DeadAfter()
				ws.interval = e.cfg.RetransInterval
				ws.attempts = 0
			}
			ws.inflight = append(ws.inflight, m)
			continue
		}
		if len(ws.frames) >= maxInflightFrags {
			break
		}
		idx := m.next
		m.next++
		seq := ws.nextSeq
		ws.nextSeq++
		if idx == m.frags-1 {
			m.lastSeq = seq
		}
		ws.frames = append(ws.frames, wfrag{seq: seq, msg: m, idx: idx})
		e.wTransmitFrag(dst, ws, m, idx, seq)
	}
	e.wArm(dst, ws)
}

// wTransmitFrag charges the send cost and schedules fragment idx of m onto
// the bus, serialized behind earlier fragment charges (ws.readyAt). The
// transmission is skipped if the message completes or parks before the
// processing delay elapses.
func (e *Endpoint) wTransmitFrag(dst frame.MID, ws *wsend, m *wmsg, idx int, seq uint8) {
	start := idx * m.fragSz
	end := start + m.fragSz
	if end > len(m.payload) {
		end = len(m.payload)
	}
	var chunk []byte
	if start < end {
		chunk = m.payload[start:end]
	}
	d := e.chargeSend(true, len(chunk))
	now := e.k.Now()
	cpuDone := now + d
	if ws.readyAt > now {
		cpuDone = ws.readyAt + d
	}
	ws.readyAt = cpuDone
	submit := cpuDone
	if submit < ws.lineFreeAt {
		submit = ws.lineFreeAt
	}
	wire := (&frame.TransportFrame{Kind: frame.TransportFrag, Payload: chunk}).WireSize()
	ws.lineFreeAt = submit + e.wireTime(wire)
	epoch := e.epoch
	e.k.After(submit-now, func() {
		if epoch != e.epoch || m.done || m.parked {
			return
		}
		f := &frame.TransportFrame{
			Kind:      frame.TransportFrag,
			Src:       e.mid,
			Dst:       dst,
			Seq:       seq,
			ConnOpen:  true,
			MsgSeq:    m.msgSeq,
			FragIndex: uint8(idx),
			FragEnd:   idx == m.frags-1,
			Urgent:    m.urgent,
			Payload:   chunk,
		}
		if wr := e.win[dst]; wr != nil && wr.valid {
			// The fragment carries the reverse direction's cumulative
			// acknowledgement, superseding any standalone FRAGACK pending
			// (§5.2.3's piggyback preference).
			f.AckPresent = true
			f.AckSeq = wr.cum
			wr.ackGen++
			wr.ackPending = false
			e.iface.CountCumulativeAck()
			e.emit(EvCumAck, dst, wr.cum, 0)
		}
		e.transmit(f)
	})
}

// wArm starts the per-destination go-back-N recovery timer if it is not
// already running and something is outstanding. The wait scales with the
// bytes in flight so a burst is not retried while still on the wire, capped
// well inside the death-detection window.
func (e *Endpoint) wArm(dst frame.MID, ws *wsend) {
	if ws.armed || !ws.outstanding() {
		return
	}
	ws.armed = true
	ws.timerGen++
	gen := ws.timerGen
	bytes := 0
	for _, fr := range ws.frames {
		n := len(fr.msg.payload) - fr.idx*fr.msg.fragSz
		if n > fr.msg.fragSz {
			n = fr.msg.fragSz
		}
		if n > 0 {
			bytes += n
		}
	}
	guard := e.wireTime(bytes) * 3
	if max := e.cfg.DeadAfter() / 2; guard > max {
		guard = max
	}
	wait := ws.interval + guard
	if e.cfg.RetransJitter > 0 {
		wait += time.Duration(e.k.Rand().Int63n(int64(e.cfg.RetransJitter) + 1))
	}
	epoch := e.epoch
	e.k.After(wait, func() {
		if epoch != e.epoch || e.wout[dst] != ws || ws.timerGen != gen {
			return
		}
		ws.armed = false
		if !ws.outstanding() {
			return
		}
		if e.k.Now() >= ws.deadline {
			e.wPeerDead(dst, ws)
			return
		}
		e.wRetransmit(dst, ws)
	})
}

// wCancelTimer stops the recovery timer and resets the backoff, called on
// acknowledgement progress (go-back-N restarts the timer for the new oldest
// outstanding frame).
func (e *Endpoint) wCancelTimer(ws *wsend) {
	ws.timerGen++
	ws.armed = false
	ws.interval = e.cfg.RetransInterval
	ws.attempts = 0
}

// wRetransmit is one go-back-N recovery round: re-send every unacknowledged
// fragment in frame-sequence order. When every fragment is acknowledged but
// a message completion is missing, probe with the oldest incomplete
// message's final fragment — the duplicate triggers the receiver's
// cached-reply replay (§5.2.3).
func (e *Endpoint) wRetransmit(dst frame.MID, ws *wsend) {
	e.totals.RetransTimer += e.cfg.Costs.RetransTimer
	ws.attempts++
	if e.cfg.RetransBackoff > 1 {
		// Retry rate decreases with attempts (§5.2.2), capped so a
		// live-but-lossy peer still sees several attempts per
		// death-detection window.
		ws.interval = time.Duration(float64(ws.interval) * e.cfg.RetransBackoff)
		if max := e.cfg.DeadAfter() / 6; ws.interval > max {
			ws.interval = max
		}
	}
	if len(ws.frames) > 0 {
		for _, fr := range ws.frames {
			e.iface.CountFragmentRetransmit()
			e.emit(EvFragRetransmit, dst, fr.seq, ws.attempts+1)
			e.wTransmitFrag(dst, ws, fr.msg, fr.idx, fr.seq)
		}
	} else {
		for _, m := range ws.inflight {
			if m.parked || m.next < m.frags {
				continue
			}
			e.iface.CountFragmentRetransmit()
			e.emit(EvFragRetransmit, dst, m.lastSeq, ws.attempts+1)
			e.wTransmitFrag(dst, ws, m, m.frags-1, m.lastSeq)
			break
		}
	}
	e.wArm(dst, ws)
}

// wPeerDead fails every inflight and queued message and discards both sides
// of the connection state, mirroring the stop-and-wait peerDead.
func (e *Endpoint) wPeerDead(dst frame.MID, ws *wsend) {
	failed := append(append([]*wmsg(nil), ws.inflight...), ws.queue...)
	ws.inflight = nil
	ws.queue = nil
	ws.frames = nil
	ws.timerGen++
	e.iface.CountPeerDeadTimeout()
	e.emit(EvPeerDead, dst, 0, ws.attempts)
	e.emit(EvConnClose, dst, 0, 0)
	delete(e.wout, dst)
	delete(e.win, dst)
	for _, m := range failed {
		m.done = true
		m.parkGen++
		if m.cb != nil {
			m.cb(Result{Kind: ResultPeerDead})
		}
	}
}

// wDropFrames removes m's fragments from the unacknowledged-frame list.
func (e *Endpoint) wDropFrames(ws *wsend, m *wmsg) {
	kept := ws.frames[:0]
	for _, fr := range ws.frames {
		if fr.msg != m {
			kept = append(kept, fr)
		}
	}
	ws.frames = kept
}

// wProcess dispatches one received frame in windowed mode. Any frame heard
// proves the peer alive and restarts the no-response clock (§5.2.2).
func (e *Endpoint) wProcess(f *frame.TransportFrame) {
	if ws := e.wout[f.Src]; ws != nil && ws.outstanding() {
		ws.deadline = e.k.Now() + e.cfg.DeadAfter()
	}
	switch f.Kind {
	case frame.TransportFrag:
		e.wHandleFrag(f.Src, f)
	case frame.TransportFragAck:
		e.wHandleCumAck(f.Src, f.Seq)
	case frame.TransportAck:
		e.wHandleMsgAck(f.Src, f)
	case frame.TransportNack:
		e.wHandleNack(f.Src, f)
	}
	// TransportData toward a windowed endpoint would mean a mixed-mode
	// network, which is unsupported; such frames fall through and drop.
}

// wHandleCumAck releases every fragment covered by a cumulative frame
// acknowledgement and lets admission and transmission resume.
func (e *Endpoint) wHandleCumAck(src frame.MID, cum uint8) {
	ws := e.wout[src]
	if ws == nil {
		return
	}
	progress := false
	for len(ws.frames) > 0 && seqLE(ws.frames[0].seq, cum) {
		ws.frames = ws.frames[1:]
		progress = true
	}
	if !progress {
		return
	}
	e.wCancelTimer(ws)
	e.wPump(src, ws)
}

// wHandleMsgAck completes the acknowledged message: its fragments are
// released, its callback runs with any piggybacked reply, and the window
// opens for the next queued message.
func (e *Endpoint) wHandleMsgAck(src frame.MID, f *frame.TransportFrame) {
	if f.AckPresent {
		e.wHandleCumAck(src, f.AckSeq)
	}
	ws := e.wout[src]
	if ws == nil {
		return
	}
	m := ws.take(f.Seq)
	if m == nil {
		return // duplicate ack of an already-completed message
	}
	e.wDropFrames(ws, m)
	e.emit(EvAckRx, src, f.Seq, 0)
	if m.cb != nil {
		m.cb(Result{Kind: ResultAcked, Reply: f.Payload})
	}
	e.wCancelTimer(ws)
	e.wPump(src, ws)
}

// wHandleNack processes a message-level negative acknowledgement. BUSY parks
// the message for the slower busy-retry interval (§5.2.3) — its fragments
// are dropped from the recovery set because the receiver provably assembled
// the whole message before refusing it, and the retry re-fragments from the
// start with fresh frame sequences. Error NACKs consume the message.
func (e *Endpoint) wHandleNack(src frame.MID, f *frame.TransportFrame) {
	ws := e.wout[src]
	if ws == nil {
		return
	}
	msgSeq := f.Seq
	if f.Err == frame.NackBusy {
		var m *wmsg
		for _, c := range ws.inflight {
			if c.msgSeq == msgSeq {
				m = c
				break
			}
		}
		if m == nil || m.parked {
			return
		}
		ws.deadline = e.k.Now() + e.cfg.DeadAfter()
		e.emit(EvBusyRetry, src, msgSeq, 0)
		m.parked = true
		m.parkGen++
		m.next = 0
		e.wDropFrames(ws, m)
		gen := m.parkGen
		epoch := e.epoch
		e.k.After(e.cfg.BusyRetryInterval, func() {
			if epoch != e.epoch || e.wout[src] != ws || m.done ||
				!m.parked || m.parkGen != gen {
				return
			}
			m.parked = false
			e.wPump(src, ws)
		})
		e.wCancelTimer(ws)
		e.wArm(src, ws) // still covers the other in-flight messages
		return
	}
	m := ws.take(msgSeq)
	if m == nil {
		return
	}
	e.wDropFrames(ws, m)
	if m.cb != nil {
		m.cb(Result{Kind: ResultError, Err: f.Err})
	}
	e.wCancelTimer(ws)
	e.wPump(src, ws)
}

// wHandleFrag is the receive side: strict in-order frame acceptance
// (go-back-N), single-buffer reassembly, duplicate replay from the reply
// cache, and buffering of completed messages for in-order delivery. The
// payload is always copied out of the shared bus buffer — delivery happens
// on a later event, past the buffer's lifetime.
func (e *Endpoint) wHandleFrag(src frame.MID, f *frame.TransportFrame) {
	if f.AckPresent {
		e.wHandleCumAck(src, f.AckSeq)
	}
	wr := e.wrecvFor(src)
	wr.lastHeard = e.k.Now()
	if !wr.valid {
		// "Take any SN" adoption (§5.2.2) — but only a message-initial
		// fragment can start a fresh record; a mid-message fragment waits
		// for the sender's recovery pass to wrap back to the start.
		if f.FragIndex != 0 {
			return
		}
		wr.valid = true
		wr.cum = f.Seq
		wr.next = f.MsgSeq
	} else {
		switch {
		case f.Seq == wr.cum+1:
			wr.cum++
		case seqLE(f.Seq, wr.cum):
			// Duplicate: our acknowledgement was lost. A duplicate of a
			// message's final fragment may also be the sender probing for
			// a lost completion ack — replay it from the cache.
			if f.FragEnd {
				if cr, ok := wr.cache[f.MsgSeq]; ok {
					e.wReplay(src, f.MsgSeq, cr)
					return
				}
			}
			e.wScheduleCumAck(src, wr)
			return
		default:
			// Gap: go-back-N receivers drop out-of-order fragments; the
			// cumulative ack tells the sender where to resume.
			e.wScheduleCumAck(src, wr)
			return
		}
	}
	if wr.asmOpen && (wr.asmSeq != f.MsgSeq || wr.asmIdx != int(f.FragIndex)) {
		// The sender restarted the message (busy retry) or moved on;
		// whatever was accumulating is void.
		wr.asmOpen = false
		wr.asm = nil
	}
	if !wr.asmOpen {
		if f.FragIndex != 0 {
			// Mid-message fragment with no open assembly: the stream
			// position is consumed but the content is unusable; the
			// sender recovers at the message level (probe → replay or
			// busy retry from fragment zero).
			e.wScheduleCumAck(src, wr)
			return
		}
		wr.asmOpen = true
		wr.asmSeq = f.MsgSeq
		wr.asmIdx = 0
		wr.asm = nil
	}
	wr.asmIdx++
	if !f.FragEnd {
		wr.asm = append(wr.asm, f.Payload...)
		e.wScheduleCumAck(src, wr)
		return
	}
	wr.asmOpen = false
	payload := append(wr.asm, f.Payload...) // copies out of the bus buffer
	wr.asm = nil
	if cr, ok := wr.cache[f.MsgSeq]; ok {
		// A full re-delivery of an answered message (busy retry whose
		// first delivery was consumed, with the answer lost): replay.
		e.wReplay(src, f.MsgSeq, cr)
		return
	}
	if wr.skipped[f.MsgSeq] || seqLT(f.MsgSeq, wr.next) {
		e.wScheduleCumAck(src, wr)
		return // stale incarnation of an already-consumed message
	}
	if wr.buffered == nil {
		wr.buffered = make(map[uint8]*winMsg)
	}
	wr.buffered[f.MsgSeq] = &winMsg{payload: payload, urgent: f.Urgent}
	e.wScheduleCumAck(src, wr)
	e.wTryDeliver(src, wr)
}

// wTryDeliver hands the next deliverable buffered message to the upper
// layer. Delivery is strictly in message-sequence order, with one exception:
// while the head message is busy-refused (busyWait), the serially-lowest
// URGENT buffered message may overtake — a kernel reply must never be
// blocked behind a busy-parked request (§5.2.2's no-deadlock rule). One
// delivery is outstanding at a time; the verdict (wConsume) triggers the
// next. The upper-layer hook runs on a fresh event so a verdict arriving
// via ResolveHold cannot reenter OnData from client context.
func (e *Endpoint) wTryDeliver(src frame.MID, wr *wrecv) {
	if wr.delivering {
		return
	}
	for wr.skipped[wr.next] {
		delete(wr.skipped, wr.next)
		wr.next++
		wr.busyWait = false
	}
	seq := wr.next
	m := wr.buffered[seq]
	if m == nil && wr.busyWait {
		bestDist := -1
		for _, k := range sortediter.Keys(wr.buffered) {
			if !wr.buffered[k].urgent {
				continue
			}
			d := int(k - wr.next) // serial distance past the head
			if bestDist < 0 || d < bestDist {
				bestDist = d
				seq = k
			}
		}
		if bestDist >= 0 {
			m = wr.buffered[seq]
		}
	}
	if m == nil {
		return
	}
	delete(wr.buffered, seq)
	wr.delivering = true
	payload := m.payload
	msgSeq := seq
	epoch := e.epoch
	e.k.After(0, func() {
		if epoch != e.epoch {
			return
		}
		dec := e.hooks.OnData(src, payload)
		e.wApplyVerdict(src, msgSeq, dec)
	})
}

// wApplyVerdict is the windowed counterpart of applyVerdict: it disposes of
// a delivered message per the upper layer's decision.
func (e *Endpoint) wApplyVerdict(src frame.MID, msgSeq uint8, dec Decision) {
	wr := e.wrecvFor(src)
	switch dec.Verdict {
	case VerdictAck:
		e.wConsume(src, wr, msgSeq, cachedReply{kind: replyAck, payload: dec.Reply})
		e.wSendMsgAck(src, msgSeq, dec.Reply)
	case VerdictError:
		e.wConsume(src, wr, msgSeq, cachedReply{kind: replyNack, err: dec.Err})
		e.wSendMsgNack(src, msgSeq, dec.Err)
	case VerdictAckDeferred:
		// No piggyback rides a windowed completion ack, so the deferral
		// degrades to a plain ack after one ack-delay (A).
		e.wConsume(src, wr, msgSeq, cachedReply{kind: replyAck})
		epoch := e.epoch
		e.k.After(e.cfg.A, func() {
			if epoch != e.epoch {
				return
			}
			e.wSendMsgAck(src, msgSeq, nil)
		})
	case VerdictBusy:
		// Not consumed: the sender re-fragments after its busy-retry
		// interval; meanwhile urgent buffered messages may overtake.
		wr.delivering = false
		wr.busyWait = true
		e.wSendMsgNack(src, msgSeq, frame.NackBusy)
		e.wTryDeliver(src, wr)
	case VerdictHold:
		h := &held{seq: msgSeq, expiry: dec.ExpiryVerdict}
		e.holds[src] = h
		timeout := dec.HoldTimeout
		if timeout < 0 {
			return // no auto expiry; the upper layer owns the hold
		}
		if timeout == 0 {
			timeout = e.cfg.A
		}
		if h.expiry == 0 {
			h.expiry = VerdictAck
		}
		gen := h.gen
		epoch := e.epoch
		e.k.After(timeout, func() {
			if epoch != e.epoch || e.holds[src] != h || h.gen != gen {
				return
			}
			delete(e.holds, src)
			e.wApplyVerdict(src, msgSeq, Decision{Verdict: h.expiry})
			if e.hooks.OnHoldExpired != nil {
				e.hooks.OnHoldExpired(src, h.expiry)
			}
		})
	default:
		panic("deltat: invalid verdict in windowed mode")
	}
}

// wConsume records a consuming verdict: delivery order advances, the reply
// is cached for duplicate replay, and the next buffered message (if any)
// is handed up.
func (e *Endpoint) wConsume(src frame.MID, wr *wrecv, msgSeq uint8, cr cachedReply) {
	wr.delivering = false
	if msgSeq == wr.next {
		wr.next++
		wr.busyWait = false
	} else {
		// An urgent message consumed ahead of order during busyWait; the
		// head pointer skips it when it finally advances.
		if wr.skipped == nil {
			wr.skipped = make(map[uint8]bool)
		}
		wr.skipped[msgSeq] = true
	}
	if wr.cache == nil {
		wr.cache = make(map[uint8]cachedReply)
	}
	if _, ok := wr.cache[msgSeq]; !ok {
		wr.cacheAge = append(wr.cacheAge, msgSeq)
		if len(wr.cacheAge) > replyCacheCap {
			delete(wr.cache, wr.cacheAge[0])
			wr.cacheAge = wr.cacheAge[1:]
		}
	}
	wr.cache[msgSeq] = cr
	e.wTryDeliver(src, wr)
}

// wReplay re-answers a duplicate of a consumed message from the cache.
func (e *Endpoint) wReplay(src frame.MID, msgSeq uint8, cr cachedReply) {
	switch cr.kind {
	case replyAck:
		e.wSendMsgAck(src, msgSeq, cr.payload)
	case replyNack:
		e.wSendMsgNack(src, msgSeq, cr.err)
	}
}

// wSendMsgAck transmits a message-completion acknowledgement, doubling as
// the cumulative fragment acknowledgement for the link.
func (e *Endpoint) wSendMsgAck(dst frame.MID, msgSeq uint8, reply []byte) {
	e.emit(EvAckTx, dst, msgSeq, 0)
	d := e.chargeSend(false, 0)
	epoch := e.epoch
	e.k.After(d, func() {
		if epoch != e.epoch {
			return
		}
		f := &frame.TransportFrame{
			Kind:     frame.TransportAck,
			Src:      e.mid,
			Dst:      dst,
			Seq:      msgSeq,
			ConnOpen: true,
			Payload:  reply,
		}
		if wr := e.win[dst]; wr != nil && wr.valid {
			f.AckPresent = true
			f.AckSeq = wr.cum
			wr.ackGen++
			wr.ackPending = false
			e.iface.CountCumulativeAck()
			e.emit(EvCumAck, dst, wr.cum, 0)
		}
		e.transmit(f)
	})
}

// wSendMsgNack transmits a message-level negative acknowledgement (BUSY or
// an error code), also carrying the cumulative fragment acknowledgement.
func (e *Endpoint) wSendMsgNack(dst frame.MID, msgSeq uint8, code frame.ErrCode) {
	d := e.chargeSend(false, 0)
	epoch := e.epoch
	e.k.After(d, func() {
		if epoch != e.epoch {
			return
		}
		f := &frame.TransportFrame{
			Kind:     frame.TransportNack,
			Src:      e.mid,
			Dst:      dst,
			Seq:      msgSeq,
			ConnOpen: true,
			Err:      code,
		}
		if wr := e.win[dst]; wr != nil && wr.valid {
			f.AckPresent = true
			f.AckSeq = wr.cum
			wr.ackGen++
			wr.ackPending = false
			e.iface.CountCumulativeAck()
			e.emit(EvCumAck, dst, wr.cum, 0)
		}
		e.transmit(f)
	})
}

// wScheduleCumAck arranges a standalone cumulative fragment acknowledgement
// after a short wait — long enough for an imminent message-completion ack or
// reverse fragment to carry the cumulative ack for free (§5.2.3's piggyback
// preference), but well inside the sender's retransmission guard.
func (e *Endpoint) wScheduleCumAck(src frame.MID, wr *wrecv) {
	if wr.ackPending {
		return
	}
	wr.ackPending = true
	wr.ackGen++
	gen := wr.ackGen
	delay := e.cfg.A + 2*e.wireTime(e.wFragSize(0))
	epoch := e.epoch
	e.k.After(delay, func() {
		if epoch != e.epoch || e.win[src] != wr || wr.ackGen != gen || !wr.ackPending {
			return
		}
		wr.ackPending = false
		d := e.chargeSend(false, 0)
		e.k.After(d, func() {
			if epoch != e.epoch {
				return
			}
			e.iface.CountCumulativeAck()
			e.emit(EvCumAck, src, wr.cum, 0)
			e.transmit(&frame.TransportFrame{
				Kind:     frame.TransportFragAck,
				Src:      e.mid,
				Dst:      src,
				Seq:      wr.cum,
				ConnOpen: true,
			})
		})
	})
}

package deltat

import (
	"testing"
	"time"

	"soda/internal/bus"
	"soda/internal/frame"
	"soda/internal/sim"
)

// eventRig is a rig with the transport observer armed on every endpoint.
type eventRig struct {
	*rig
	events []Event
}

func newEventRig(t *testing.T, seed int64, lossProb float64, mids []frame.MID, hooks map[frame.MID]Hooks) *eventRig {
	t.Helper()
	er := &eventRig{}
	k := sim.New(seed)
	k.SetEventLimit(2_000_000)
	busCfg := bus.DefaultConfig()
	busCfg.LossProb = lossProb
	b := bus.New(k, busCfg)
	er.rig = &rig{k: k, b: b, eps: make(map[frame.MID]*Endpoint)}
	cfg := DefaultConfig()
	cfg.Observer = func(ev Event) { er.events = append(er.events, ev) }
	for _, mid := range mids {
		h, ok := hooks[mid]
		if !ok {
			h = Hooks{OnData: func(frame.MID, []byte) Decision { return Decision{Verdict: VerdictAck} }}
		}
		ep, err := New(k, b.Wire(), mid, cfg, h)
		if err != nil {
			t.Fatalf("New(%d): %v", mid, err)
		}
		er.eps[mid] = ep
	}
	return er
}

func (er *eventRig) count(kind EventKind) int {
	n := 0
	for _, ev := range er.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestObserverEventsOnCleanExchange: a loss-free send produces the minimal
// stream — connection opens on both sides, one ACK each way, no recovery.
func TestObserverEventsOnCleanExchange(t *testing.T) {
	r := newEventRig(t, 1, 0, []frame.MID{1, 2}, nil)
	var res *Result
	r.eps[1].Send(2, []byte("ping"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultAcked {
		t.Fatalf("result = %+v", res)
	}
	if n := r.count(EvConnOpen); n != 2 {
		t.Errorf("EvConnOpen = %d, want 2 (one record per side)", n)
	}
	if n := r.count(EvAckTx); n != 1 {
		t.Errorf("EvAckTx = %d, want 1", n)
	}
	if n := r.count(EvAckRx); n != 1 {
		t.Errorf("EvAckRx = %d, want 1", n)
	}
	for _, kind := range []EventKind{EvRetransmit, EvPeerDead, EvBusyRetry, EvConnExpire, EvConnClose} {
		if n := r.count(kind); n != 0 {
			t.Errorf("%v = %d on a clean run, want 0", kind, n)
		}
	}
	// The AckRx event carries the attempt count of the acknowledged send.
	for _, ev := range r.events {
		if ev.Kind == EvAckRx && ev.Attempt != 1 {
			t.Errorf("EvAckRx attempt = %d, want 1", ev.Attempt)
		}
	}
}

// TestObserverAndStatsAgreeUnderLoss: on a lossy bus the observer stream's
// retransmit count must equal the bus Stats counter, and both must be
// non-zero.
func TestObserverAndStatsAgreeUnderLoss(t *testing.T) {
	r := newEventRig(t, 3, 0.3, []frame.MID{1, 2}, nil)
	delivered := 0
	for i := 0; i < 20; i++ {
		r.eps[1].Send(2, []byte{byte(i)}, nil, func(got Result) {
			if got.Kind == ResultAcked {
				delivered++
			}
		})
	}
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 20 {
		t.Fatalf("delivered %d/20", delivered)
	}
	st := r.b.Stats()
	if st.Retransmissions == 0 {
		t.Fatal("no retransmissions at 30% loss; the test exercised nothing")
	}
	if n := uint64(r.count(EvRetransmit)); n != st.Retransmissions {
		t.Errorf("observer saw %d retransmits, bus counted %d", n, st.Retransmissions)
	}
	// Retransmit events carry increasing attempt numbers starting at 2.
	for _, ev := range r.events {
		if ev.Kind == EvRetransmit && ev.Attempt < 2 {
			t.Errorf("EvRetransmit attempt = %d, want ≥2", ev.Attempt)
		}
	}
}

// TestPeerDeadEventAndCounter: a send toward silence times out after
// MPL+Δt, emitting EvPeerDead and counting a peer-dead timeout in Stats.
func TestPeerDeadEventAndCounter(t *testing.T) {
	r := newEventRig(t, 1, 0, []frame.MID{1, 2}, nil)
	r.eps[2].Crash() // the peer hears nothing and answers nothing
	var res *Result
	r.eps[1].Send(2, []byte("into the void"), nil, func(got Result) { res = &got })
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil || res.Kind != ResultPeerDead {
		t.Fatalf("result = %+v, want peer dead", res)
	}
	if n := r.count(EvPeerDead); n != 1 {
		t.Errorf("EvPeerDead = %d, want 1", n)
	}
	if n := r.count(EvConnClose); n != 1 {
		t.Errorf("EvConnClose = %d, want 1 (record discarded with the peer)", n)
	}
	if st := r.b.Stats(); st.PeerDeadTimeouts != 1 {
		t.Errorf("Stats.PeerDeadTimeouts = %d, want 1", st.PeerDeadTimeouts)
	}
}

// TestPiggybackAckEventAndCounter: resolving a hold by sending a reverse
// DATA frame rides the acknowledgement on it — observable as
// EvPiggybackAck and counted in Stats (invisible in ByKind).
func TestPiggybackAckEventAndCounter(t *testing.T) {
	hooks := map[frame.MID]Hooks{
		2: {OnData: func(frame.MID, []byte) Decision {
			return Decision{Verdict: VerdictHold, HoldTimeout: -1}
		}},
	}
	r := newEventRig(t, 1, 0, []frame.MID{1, 2}, hooks)
	r.eps[1].Send(2, []byte("question"), nil, nil)
	// Resolve once the question has arrived and is held (well past the
	// processing charges and wire time, well before any retransmission).
	r.k.After(8*time.Millisecond, func() {
		if !r.eps[2].HasHold(1) {
			t.Error("question not held yet; adjust the delay")
		}
		r.eps[2].SendResolvingHold(1, []byte("answer"), nil, nil)
	})
	if err := r.k.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := r.count(EvPiggybackAck); n < 1 {
		t.Errorf("EvPiggybackAck = %d, want ≥1", n)
	}
	st := r.b.Stats()
	if st.PiggybackedAcks != uint64(r.count(EvPiggybackAck)) {
		t.Errorf("Stats.PiggybackedAcks = %d, observer saw %d", st.PiggybackedAcks, r.count(EvPiggybackAck))
	}
}

// TestNoObserverBuildsNoEvents: the zero-overhead contract — with no
// observer the endpoint behaves identically (frame for frame) and the
// always-on counters still work.
func TestNoObserverBuildsNoEvents(t *testing.T) {
	run := func(observe bool) (bus.Stats, int) {
		events := 0
		k := sim.New(7)
		b := bus.New(k, func() bus.Config { c := bus.DefaultConfig(); c.LossProb = 0.3; return c }())
		cfg := DefaultConfig()
		if observe {
			cfg.Observer = func(Event) { events++ }
		}
		mk := func(mid frame.MID) *Endpoint {
			ep, err := New(k, b.Wire(), mid, cfg, Hooks{OnData: func(frame.MID, []byte) Decision {
				return Decision{Verdict: VerdictAck}
			}})
			if err != nil {
				t.Fatalf("New(%d): %v", mid, err)
			}
			return ep
		}
		e1, _ := mk(1), mk(2)
		for i := 0; i < 10; i++ {
			e1.Send(2, []byte{byte(i)}, nil, nil)
		}
		if err := k.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return b.Stats(), events
	}
	withObs, n := run(true)
	withoutObs, zero := run(false)
	if n == 0 {
		t.Fatal("observer saw nothing")
	}
	if zero != 0 {
		t.Fatal("events built with no observer installed")
	}
	if withObs.FramesSent != withoutObs.FramesSent ||
		withObs.Retransmissions != withoutObs.Retransmissions ||
		withObs.BytesSent != withoutObs.BytesSent {
		t.Errorf("observer changed the run: %+v vs %+v", withObs, withoutObs)
	}
}

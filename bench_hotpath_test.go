// Hot-path allocation benchmarks. Unlike bench_test.go, which reports
// calibrated *virtual*-time metrics, these measure the simulator itself:
// wall ns/op, B/op and allocs/op for the three costs that bound sweep
// throughput — building+booting a network, one REQUEST round trip, and a
// full chaos sweep. BENCH_sweep.json records the trajectory; CI re-runs
// them with -benchmem.
package soda_test

import (
	"testing"
	"time"

	"soda"
	"soda/sweep"
)

var hotPattern = soda.WellKnownPattern(0o7441)

// registerEcho installs a minimal echo service plus a client that performs
// rounds blocking EXCHANGEs against it, recording the last result in *last.
func registerEcho(nw *soda.Network, rounds int, last *soda.CallResult) {
	nw.Register("server", soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			if err := c.Advertise(hotPattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival {
				return
			}
			c.AcceptCurrentExchange(soda.OK, []byte("reply-payload-64b"), ev.PutSize)
		},
	})
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			srv, ok := c.Discover(hotPattern)
			if !ok {
				panic("benchmark: no server discovered")
			}
			put := []byte("request-payload-64-bytes-of-data")
			for i := 0; i < rounds; i++ {
				*last = c.BExchange(srv, soda.OK, put, 64)
			}
		},
	})
}

// BenchmarkBoot measures building a two-node network, booting a server and
// a client, and running one DISCOVER + one EXCHANGE to completion — the
// fixed cost every sweep run pays before its workload starts.
func BenchmarkBoot(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var last soda.CallResult
		nw := soda.NewNetwork(soda.WithSeed(1))
		registerEcho(nw, 1, &last)
		nw.MustAddNode(1)
		nw.MustAddNode(2)
		nw.MustBoot(1, "server")
		nw.MustBoot(2, "client")
		// The run terminates with the server parked in its handler and no
		// events left, which the kernel reports as a suspension; the real
		// success signal is the client's last result.
		_ = nw.RunToCompletion()
		if last.Status != soda.StatusSuccess {
			b.Fatalf("exchange failed: %v", last.Status)
		}
	}
}

// BenchmarkRequestRoundTrip measures one blocking EXCHANGE round trip on a
// warm two-node network: REQUEST out, ACCEPT back, both riding the Delta-t
// transport. allocs/op here is the per-transaction footprint of the whole
// frame/bus/scheduler stack (setup is amortized over b.N round trips).
func BenchmarkRequestRoundTrip(b *testing.B) {
	b.ReportAllocs()
	var last soda.CallResult
	nw := soda.NewNetwork(soda.WithSeed(1))
	registerEcho(nw, b.N, &last)
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "client")
	b.ResetTimer()
	_ = nw.RunToCompletion() // ends in expected server-parked suspension
	b.StopTimer()
	if last.Status != soda.StatusSuccess {
		b.Fatalf("exchange failed: %v", last.Status)
	}
}

// BenchmarkChaosSweep measures a small sequential seed×plan sweep of the
// fileserver scenario under generated fault plans — the unit of work
// cmd/sodasweep shards across workers. runs/sec in BENCH_sweep.json comes
// from the same engine.
func BenchmarkChaosSweep(b *testing.B) {
	spec := sweep.Spec{
		Scenario:  "fileserver",
		Seeds:     []int64{1, 2},
		PlanSeeds: []int64{0, 7},
		Nodes:     []int{3},
		Horizon:   2 * time.Second,
		Checks:    true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := sweep.Run(spec, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Runs) != 4 {
			b.Fatalf("got %d runs, want 4", len(rep.Runs))
		}
	}
}

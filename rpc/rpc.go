// Package rpc implements remote procedure call over SODA (§4.2.2).
//
// The caller issues a PUT carrying the in-parameters followed by a blocking
// GET for the results; the server invokes the bound procedure when both
// have arrived, ACCEPTing the PUT to obtain the parameters and ACCEPTing
// the GET to return the results and unblock the caller. The pattern used in
// the PUT and GET selects the procedure.
package rpc

import (
	"fmt"

	"soda"
	"soda/internal/sortediter"
)

// Proc is a remotely callable procedure: in-parameters to out-parameters.
type Proc func(c *soda.Client, in []byte) []byte

// call tracks one caller's in-flight invocation at the server.
type call struct {
	pattern soda.Pattern
	params  []byte
	gotPut  bool
	getSig  soda.RequesterSig
	gotGet  bool
}

// serverState is the per-instance server bookkeeping. Calls are keyed by
// requester MID: a uniprogrammed caller has at most one invocation open.
type serverState struct {
	calls map[soda.MID]*call
	ready []soda.MID
}

// Server returns a program exporting the given procedures, each bound to
// its pattern. Calls from distinct clients may interleave their PUT/GET
// pairs arbitrarily; invocations execute one at a time in arrival order
// (the server is uniprogrammed).
func Server(procs map[soda.Pattern]Proc) soda.Program {
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			c.SetStash(&serverState{calls: make(map[soda.MID]*call)})
			// Advertise in sorted order: the §5.4 pattern table resolves
			// collisions last-writer-wins, so advertise order is observable.
			for _, p := range sortediter.Keys(procs) {
				if err := c.Advertise(p); err != nil {
					panic(err)
				}
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival {
				return
			}
			if _, ok := procs[ev.Pattern]; !ok {
				return
			}
			st := c.Stash().(*serverState)
			cl := st.calls[ev.Asker.MID]
			if cl == nil || cl.pattern != ev.Pattern {
				cl = &call{pattern: ev.Pattern}
				st.calls[ev.Asker.MID] = cl
			}
			if ev.PutSize > 0 || ev.GetSize == 0 {
				// The parameter PUT. Fetch the in-parameters right away
				// (ACCEPT_CURRENT_PUT in the thesis's listing).
				if cl.gotPut {
					c.RejectCurrent() // protocol error: double PUT
					return
				}
				res := c.AcceptCurrentPut(soda.OK, ev.PutSize)
				if res.Status != soda.AcceptSuccess {
					delete(st.calls, ev.Asker.MID)
					return
				}
				cl.params = res.Data
				cl.gotPut = true
			} else {
				// The result GET: remember the caller; reply when the
				// procedure completes.
				if cl.gotGet {
					c.RejectCurrent()
					return
				}
				cl.getSig = ev.Asker
				cl.gotGet = true
			}
			if cl.gotPut && cl.gotGet {
				st.ready = append(st.ready, ev.Asker.MID)
			}
		},
		Task: func(c *soda.Client) {
			st := c.Stash().(*serverState)
			for {
				c.WaitUntil(func() bool { return len(st.ready) > 0 })
				mid := st.ready[0]
				st.ready = st.ready[1:]
				cl := st.calls[mid]
				if cl == nil {
					continue
				}
				delete(st.calls, mid)
				out := procs[cl.pattern](c, cl.params)
				c.AcceptGet(cl.getSig, soda.OK, out)
			}
		},
	}
}

// CallError reports a failed remote call.
type CallError struct {
	Stage  string // "put" or "get"
	Status soda.Status
}

func (e *CallError) Error() string {
	return fmt.Sprintf("rpc: %s failed with status %v", e.Stage, e.Status)
}

// Call invokes the remote procedure bound to srv: PUT the in-parameters,
// then a blocking GET for at most maxOut bytes of results (§4.2.2).
func Call(c *soda.Client, srv soda.ServerSig, in []byte, maxOut int) ([]byte, error) {
	if res := c.BPut(srv, soda.OK, in); res.Status != soda.StatusSuccess {
		return nil, &CallError{Stage: "put", Status: res.Status}
	}
	res := c.BGet(srv, soda.OK, maxOut)
	if res.Status != soda.StatusSuccess {
		return nil, &CallError{Stage: "get", Status: res.Status}
	}
	return res.Data, nil
}

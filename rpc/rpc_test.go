package rpc

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"soda"
)

var (
	upperPat = soda.WellKnownPattern(0o123)
	sumPat   = soda.WellKnownPattern(0o124)
)

func mathServer() soda.Program {
	return Server(map[soda.Pattern]Proc{
		upperPat: func(_ *soda.Client, in []byte) []byte {
			return []byte(strings.ToUpper(string(in)))
		},
		sumPat: func(_ *soda.Client, in []byte) []byte {
			var s byte
			for _, b := range in {
				s += b
			}
			return []byte{s}
		},
	})
}

func TestCallRoundTrip(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("server", mathServer())
	var out []byte
	var callErr error
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			out, callErr = Call(c, soda.ServerSig{MID: 1, Pattern: upperPat}, []byte("hello rpc"), 64)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "client")
	if err := nw.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if callErr != nil {
		t.Fatalf("Call: %v", callErr)
	}
	if string(out) != "HELLO RPC" {
		t.Fatalf("out = %q", out)
	}
}

func TestTwoProceduresOneServer(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("server", mathServer())
	var upper, sum []byte
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			upper, _ = Call(c, soda.ServerSig{MID: 1, Pattern: upperPat}, []byte("ab"), 16)
			sum, _ = Call(c, soda.ServerSig{MID: 1, Pattern: sumPat}, []byte{1, 2, 3}, 16)
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "server")
	nw.MustBoot(2, "client")
	if err := nw.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if string(upper) != "AB" || !bytes.Equal(sum, []byte{6}) {
		t.Fatalf("upper=%q sum=%v", upper, sum)
	}
}

func TestConcurrentCallersInterleave(t *testing.T) {
	nw := soda.NewNetwork()
	nw.Register("server", mathServer())
	results := map[soda.MID]string{}
	mkCaller := func(payload string) soda.Program {
		return soda.Program{
			Task: func(c *soda.Client) {
				for i := 0; i < 3; i++ {
					out, err := Call(c, soda.ServerSig{MID: 1, Pattern: upperPat}, []byte(payload), 64)
					if err != nil {
						t.Errorf("caller %d: %v", c.MID(), err)
						return
					}
					results[c.MID()] = string(out)
				}
			},
		}
	}
	nw.Register("a", mkCaller("aaa"))
	nw.Register("b", mkCaller("bbb"))
	nw.Register("c", mkCaller("ccc"))
	nw.MustAddNode(1)
	nw.MustBoot(1, "server")
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustAddNode(4)
	nw.MustBoot(2, "a")
	nw.MustBoot(3, "b")
	nw.MustBoot(4, "c")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	want := map[soda.MID]string{2: "AAA", 3: "BBB", 4: "CCC"}
	for mid, w := range want {
		if results[mid] != w {
			t.Fatalf("caller %d got %q, want %q", mid, results[mid], w)
		}
	}
}

func TestCallToDeadServerFails(t *testing.T) {
	nw := soda.NewNetwork()
	var callErr error
	ran := false
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			_, callErr = Call(c, soda.ServerSig{MID: 9, Pattern: upperPat}, []byte("x"), 8)
			ran = true
		},
	})
	nw.MustAddNode(2)
	nw.MustBoot(2, "client")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("call never returned")
	}
	if callErr == nil {
		t.Fatal("call to nonexistent server succeeded")
	}
	var ce *CallError
	if ok := asCallError(callErr, &ce); !ok || ce.Status != soda.StatusCrashed {
		t.Fatalf("err = %v, want crashed CallError", callErr)
	}
}

func asCallError(err error, out **CallError) bool {
	ce, ok := err.(*CallError)
	if ok {
		*out = ce
	}
	return ok
}

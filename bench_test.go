// Benchmarks regenerating every table and figure of the thesis's
// evaluation (chapter 5). The numbers that matter are the reported custom
// metrics — virtual milliseconds per operation (virt_ms/op) and packets per
// operation (pkt/op) — produced by the calibrated simulation; wall-clock
// ns/op only measures the simulator itself. See EXPERIMENTS.md for the
// paper-vs-measured comparison and cmd/sodabench for the tables in the
// thesis's own format.
package soda_test

import (
	"fmt"
	"testing"

	"soda/internal/bench"
)

// BenchmarkTablePerformance regenerates the "SODA Performance" table
// (p. 115): milliseconds per PUT / GET / EXCHANGE for the pipelined and
// non-pipelined kernels across message sizes (experiment E1), with the
// packet counts of experiment E5 reported alongside.
func BenchmarkTablePerformance(b *testing.B) {
	for _, pipelined := range []bool{false, true} {
		kernel := "nonpipelined"
		if pipelined {
			kernel = "pipelined"
		}
		for _, op := range []bench.Op{bench.OpPut, bench.OpGet, bench.OpExchange} {
			for _, words := range []int{0, 1, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000} {
				name := fmt.Sprintf("%s/%v/words=%d", kernel, op, words)
				b.Run(name, func(b *testing.B) {
					var res bench.Result
					for i := 0; i < b.N; i++ {
						res = bench.MeasureOp(bench.Config{
							Op:        op,
							Words:     words,
							Pipelined: pipelined,
							Ops:       20,
						})
					}
					b.ReportMetric(float64(res.PerOp)/1e6, "virt_ms/op")
					b.ReportMetric(res.FramesPerOp, "pkt/op")
				})
			}
		}
	}
}

// BenchmarkTableBreakdown regenerates the "Breakdown of Communications
// Overhead" table (p. 116): the per-SIGNAL cost split into connection
// timers, retransmit timers, context switch, transmission, client overhead
// and protocol time (experiment E2).
func BenchmarkTableBreakdown(b *testing.B) {
	var bd bench.Breakdown
	for i := 0; i < b.N; i++ {
		bd = bench.MeasureBreakdown(50)
	}
	ms := func(d interface{ Nanoseconds() int64 }) float64 { return float64(d.Nanoseconds()) / 1e6 }
	b.ReportMetric(ms(bd.ConnTimers), "conn_ms/op")
	b.ReportMetric(ms(bd.RetransTimers), "retrans_ms/op")
	b.ReportMetric(ms(bd.CtxSwitch), "ctxswitch_ms/op")
	b.ReportMetric(ms(bd.Transmission), "tx_ms/op")
	b.ReportMetric(ms(bd.ClientOverhead), "client_ms/op")
	b.ReportMetric(ms(bd.Protocol), "protocol_ms/op")
	b.ReportMetric(ms(bd.Total), "total_virt_ms/op")
	b.ReportMetric(bd.FramesPerOp, "pkt/op")
}

// BenchmarkTableModComparison regenerates the §5.5 SODA-vs-*MOD numbers
// (experiment E3): blocking and queued signals against the layered
// port-call baseline.
func BenchmarkTableModComparison(b *testing.B) {
	cases := []struct {
		name string
		cfg  bench.Config
	}{
		{"SODA_B_SIGNAL_handler", bench.Config{Op: bench.OpSignal, Blocking: true}},
		{"SODA_B_SIGNAL_queued", bench.Config{Op: bench.OpSignal, Blocking: true, Queued: true}},
		{"SODA_SIGNAL_stream", bench.Config{Op: bench.OpSignal}},
		{"SODA_SIGNAL_stream_queued", bench.Config{Op: bench.OpSignal, Queued: true}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var res bench.Result
			for i := 0; i < b.N; i++ {
				tc.cfg.Ops = 20
				res = bench.MeasureOp(tc.cfg)
			}
			b.ReportMetric(float64(res.PerOp)/1e6, "virt_ms/op")
		})
	}
	b.Run("MOD_port_calls", func(b *testing.B) {
		var rows []bench.ModRow
		for i := 0; i < b.N; i++ {
			rows = bench.MeasureModComparison(20)
		}
		for _, row := range rows[4:] { // the two *MOD rows
			metric := "mod_sync_virt_ms/op"
			if row.Name == "*MOD asynchronous port call" {
				metric = "mod_async_virt_ms/op"
			}
			b.ReportMetric(float64(row.PerOp)/1e6, metric)
		}
	})
}

// BenchmarkFigureDeltaT drives the "Typical Delta-t Situations" figure
// (p. 106, experiment E4): every scripted protocol situation must hold.
func BenchmarkFigureDeltaT(b *testing.B) {
	var scenarios []bench.DeltaTScenario
	for i := 0; i < b.N; i++ {
		scenarios = bench.RunDeltaTScenarios()
	}
	ok := 0
	for _, sc := range scenarios {
		if sc.OK {
			ok++
		} else {
			b.Errorf("scenario failed: %s", sc.Name)
		}
	}
	b.ReportMetric(float64(ok), "scenarios_ok")
}

// BenchmarkTablePacketCounts isolates experiment E5: the per-operation
// packet counts of §5.2.3 (PUT 2; GET 4 non-pipelined, 2 pipelined;
// EXCHANGE up to 6 non-pipelined, 2 pipelined).
func BenchmarkTablePacketCounts(b *testing.B) {
	for _, tc := range []struct {
		name      string
		op        bench.Op
		pipelined bool
	}{
		{"PUT", bench.OpPut, false},
		{"GET_nonpipelined", bench.OpGet, false},
		{"GET_pipelined", bench.OpGet, true},
		{"EXCHANGE_nonpipelined", bench.OpExchange, false},
		{"EXCHANGE_pipelined", bench.OpExchange, true},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var res bench.Result
			for i := 0; i < b.N; i++ {
				res = bench.MeasureOp(bench.Config{Op: tc.op, Words: 50, Pipelined: tc.pipelined, Ops: 20})
			}
			b.ReportMetric(res.FramesPerOp, "pkt/op")
		})
	}
}

// BenchmarkAblationRMR quantifies the §6.17.2 design choice: library-level
// remote memory reference (a client process services PEEK through its
// handler) versus the optional kernel-level service.
func BenchmarkAblationRMR(b *testing.B) {
	var ab bench.RMRAblation
	for i := 0; i < b.N; i++ {
		ab = bench.MeasureRMRAblation(20, 16)
	}
	b.ReportMetric(float64(ab.LibraryPeek)/1e6, "library_virt_ms/op")
	b.ReportMetric(float64(ab.KernelPeek)/1e6, "kernel_virt_ms/op")
}

// BenchmarkAblationPiggyback quantifies the §5.2.3/§5.6 piggybacking design
// choice: the same blocking PUT stream with acknowledgement piggybacking
// disabled versus the calibrated default.
func BenchmarkAblationPiggyback(b *testing.B) {
	var ab bench.PiggybackAblation
	for i := 0; i < b.N; i++ {
		ab = bench.MeasurePiggybackAblation(20)
	}
	b.ReportMetric(float64(ab.WithPiggyback.PerOp)/1e6, "with_virt_ms/op")
	b.ReportMetric(float64(ab.WithoutPiggyback.PerOp)/1e6, "without_virt_ms/op")
	b.ReportMetric(ab.WithPiggyback.FramesPerOp, "with_pkt/op")
	b.ReportMetric(ab.WithoutPiggyback.FramesPerOp, "without_pkt/op")
}

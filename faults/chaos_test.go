// Chaos tests: the §4.4 applications run under scheduled fault plans with
// the invariant checkers armed. These are external tests (package
// faults_test) because they drive the soda facade, which itself imports
// package faults.
package faults_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"testing"
	"time"

	"soda"
	"soda/apps/boundedbuf"
	"soda/apps/fileserver"
	"soda/apps/philo"
	"soda/faults"
	"soda/timesrv"
)

func d(v time.Duration) faults.Duration { return faults.Duration(v) }

// acceptancePlan is the ISSUE's acceptance scenario: a 10s partition, 10%
// asymmetric loss, frame corruption, and one crash/reboot cycle. groups
// split the network; lossDst makes the loss one-sided; target is the node
// that crashes and comes back running program.
func acceptancePlan(groups [][]faults.MID, lossDst faults.MID, target faults.MID, program string) faults.Plan {
	return faults.Plan{Events: []faults.Event{
		{Kind: faults.Partition, Start: d(5 * time.Second), Stop: d(15 * time.Second), Groups: groups},
		{Kind: faults.Loss, Start: 0, Stop: d(20 * time.Second), Dst: lossDst, Prob: 0.10},
		{Kind: faults.Corrupt, Start: 0, Stop: d(20 * time.Second), Prob: 0.05},
		{Kind: faults.Crash, Start: d(21 * time.Second), Node: target},
		{Kind: faults.Reboot, Start: d(22 * time.Second), Node: target, Program: program},
	}}
}

// runPhiloChaos runs the dining philosophers (timeserver on 1, ring on 2-6,
// deadlock detector on 7) for 32s of virtual time under the acceptance
// plan: partition {1,2,3}|{4,5,6,7}, loss into machine 3, detector
// crash/reboot at 21s/22s. Every client is killed at 28s so in-flight
// requests resolve before the cutoff.
func runPhiloChaos(t *testing.T, seed int64, trace io.Writer) (*soda.Network, []int) {
	t.Helper()
	ring := []soda.MID{2, 3, 4, 5, 6}
	plan := acceptancePlan([][]faults.MID{{1, 2, 3}, {4, 5, 6, 7}}, 3, 7, "detector")
	nw := soda.NewNetwork(soda.WithSeed(seed), soda.WithFaultPlan(plan), soda.WithInvariantChecks())
	if trace != nil {
		nw.Trace(trace)
	}
	nw.Register("timesrv", timesrv.Program(16))
	nw.MustAddNode(1)
	nw.MustBoot(1, "timesrv")
	meals := make([]int, len(ring))
	for i, mid := range ring {
		i := i
		left := ring[(i-1+len(ring))%len(ring)]
		name := fmt.Sprintf("phil%d", i)
		nw.Register(name, philo.Philosopher(left, 0, 50*time.Millisecond, 30*time.Millisecond,
			func(c *soda.Client, meal int) { meals[i] = meal }))
		nw.MustAddNode(mid)
		nw.MustBoot(mid, name)
	}
	nw.Register("detector", philo.Detector(ring, 200*time.Millisecond, nil))
	nw.MustAddNode(7)
	nw.MustBoot(7, "detector")
	// Kill every client well before the end: their deaths void in-flight
	// requests, so the network can drain and Unresolved() must come back
	// empty. The detector dies first so it stops issuing probes.
	nw.At(28*time.Second, func() {
		for _, m := range []soda.MID{7, 2, 3, 4, 5, 6, 1} {
			nw.Node(m).Die()
		}
	})
	if err := nw.Run(32 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	return nw, meals
}

func assertGreen(t *testing.T, nw *soda.Network) {
	t.Helper()
	ch := nw.Invariants()
	if ch == nil {
		t.Fatal("invariant checker not installed")
	}
	if ch.Requests() == 0 {
		t.Fatal("checker saw no requests; the scenario did not run")
	}
	for _, v := range ch.Finish() {
		t.Errorf("violation: %s", v)
	}
	for _, sig := range ch.Unresolved() {
		t.Errorf("request stuck (never resolved): %v", sig)
	}
}

func TestChaosAcceptancePhilosophers(t *testing.T) {
	nw, meals := runPhiloChaos(t, 42, nil)
	assertGreen(t, nw)
	for i, m := range meals {
		if m == 0 {
			t.Errorf("philosopher %d never ate under the fault plan: %v", i, meals)
		}
	}
	if _, corrupted := nw.Invariants().Frames(); corrupted == 0 {
		t.Error("plan corrupted no frames; corruption path not exercised")
	}
}

func TestChaosAcceptanceFileServer(t *testing.T) {
	plan := acceptancePlan([][]faults.MID{{1}, {2}}, 1, 1, "fs")
	nw := soda.NewNetwork(soda.WithSeed(7), soda.WithFaultPlan(plan), soda.WithInvariantChecks())
	nw.Register("fs", fileserver.Server(map[string][]byte{
		"motd": []byte("hello"),
	}, 32))
	successes := 0
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			// Loop until the quiet tail, tolerating every failure mode: the
			// server is partitioned away for 10s and loses its state to a
			// crash at 21s.
			for c.Now() < 27*time.Second {
				srv, ok := fileserver.Find(c)
				if !ok {
					c.Hold(200 * time.Millisecond)
					continue
				}
				f, err := fileserver.Open(c, srv, "motd")
				if err != nil {
					c.Hold(100 * time.Millisecond)
					continue
				}
				if data, err := f.Read(64); err == nil && string(data) == "hello" {
					successes++
				}
				_ = f.Close()
				c.Hold(50 * time.Millisecond)
			}
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "fs")
	nw.MustBoot(2, "client")
	if err := nw.Run(32 * time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	assertGreen(t, nw)
	if successes == 0 {
		t.Error("no session ever succeeded around the faults")
	}
}

// TestChaosTraceIsDeterministic replays the philosopher acceptance run:
// the same seed and the same plan must reproduce the same bus traffic,
// frame for frame.
func TestChaosTraceIsDeterministic(t *testing.T) {
	run := func() (uint64, uint64) {
		h := fnv.New64a()
		nw, _ := runPhiloChaos(t, 42, h)
		return h.Sum64(), nw.Stats().FramesSent
	}
	hash1, sent1 := run()
	hash2, sent2 := run()
	if sent1 == 0 {
		t.Fatal("no frames sent")
	}
	if hash1 != hash2 || sent1 != sent2 {
		t.Fatalf("same seed + same plan diverged: hash %x/%x, frames %d/%d",
			hash1, hash2, sent1, sent2)
	}
}

// TestFileServerLossSweep sweeps frame loss from 0 to 30% over file-server
// sessions; the invariant checkers assert exactly-once delivery holds at
// every probability.
func TestFileServerLossSweep(t *testing.T) {
	for _, loss := range []float64{0, 0.1, 0.2, 0.3} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%v", loss), func(t *testing.T) {
			nw := soda.NewNetwork(soda.WithSeed(11), soda.WithLoss(loss), soda.WithInvariantChecks())
			nw.Register("fs", fileserver.Server(map[string][]byte{"motd": []byte("hi")}, 32))
			successes := 0
			nw.Register("client", soda.Program{
				Task: func(c *soda.Client) {
					for c.Now() < 5*time.Second {
						srv, ok := fileserver.Find(c)
						if !ok {
							c.Hold(100 * time.Millisecond)
							continue
						}
						f, err := fileserver.Open(c, srv, "motd")
						if err != nil {
							continue
						}
						if _, err := f.Read(64); err == nil {
							successes++
						}
						_ = f.Close()
					}
				},
			})
			nw.MustAddNode(1)
			nw.MustAddNode(2)
			nw.MustBoot(1, "fs")
			nw.MustBoot(2, "client")
			if err := nw.Run(7 * time.Second); err != nil {
				t.Fatalf("run: %v", err)
			}
			assertGreen(t, nw)
			if successes == 0 {
				t.Error("no session succeeded")
			}
		})
	}
}

// TestGeneratedPlanSeedSweep runs the bounded buffer under randomized,
// generated fault plans across seeds. Items are tagged, so duplicates at
// the consumer would betray a broken exactly-once guarantee at the
// application layer too.
func TestGeneratedPlanSeedSweep(t *testing.T) {
	const perProducer = 25
	totalConsumed := 0
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := faults.Generate(rand.New(rand.NewSource(seed)), faults.GenConfig{
				Horizon: 12 * time.Second,
				MIDs:    []faults.MID{1, 2, 3},
			})
			if err := plan.Validate(); err != nil {
				t.Fatalf("generated plan invalid: %v", err)
			}
			nw := soda.NewNetwork(soda.WithSeed(seed), soda.WithFaultPlan(plan), soda.WithInvariantChecks())
			seen := make(map[string]bool)
			nw.Register("consumer", boundedbuf.Consumer(4, 8, func(c *soda.Client, data []byte) {
				key := string(data)
				if seen[key] {
					t.Errorf("item %x consumed twice", data)
				}
				seen[key] = true
			}))
			tag := func(producer byte) func(c *soda.Client, i int) []byte {
				return func(c *soda.Client, i int) []byte {
					c.Hold(10 * time.Millisecond) // production time
					item := make([]byte, 5)
					item[0] = producer
					binary.BigEndian.PutUint32(item[1:], uint32(i))
					return item
				}
			}
			nw.Register("producerA", boundedbuf.Producer(perProducer, tag('a'), nil))
			nw.Register("producerB", boundedbuf.Producer(perProducer, tag('b'), nil))
			nw.MustAddNode(1)
			nw.MustAddNode(2)
			nw.MustAddNode(3)
			nw.MustBoot(1, "consumer")
			nw.MustBoot(2, "producerA")
			nw.MustBoot(3, "producerB")
			if err := nw.Run(12 * time.Second); err != nil {
				t.Fatalf("run: %v", err)
			}
			ch := nw.Invariants()
			for _, v := range ch.Finish() {
				t.Errorf("violation: %s", v)
			}
			for _, sig := range ch.Unresolved() {
				t.Errorf("request stuck (never resolved): %v", sig)
			}
			if len(seen) > 2*perProducer {
				t.Errorf("consumed %d items from %d produced", len(seen), 2*perProducer)
			}
			totalConsumed += len(seen)
		})
	}
	if totalConsumed == 0 {
		t.Error("no seed delivered any items; the sweep exercised nothing")
	}
}

// TestBulkTransferLossSweep drives multi-fragment EXCHANGEs through the
// windowed transport (DESIGN.md §12) under 10% and 30% frame loss, in
// both recovery modes. The invariant checkers assert exactly-once
// delivery holds regardless of how the holes were repaired — selective
// repeat with SACK, or the legacy full-window go-back-N resend.
func TestBulkTransferLossSweep(t *testing.T) {
	pattern := soda.WellKnownPattern(0o6223)
	for _, mode := range []struct {
		name string
		opt  soda.Option
	}{
		{"selective", soda.WithTransportRecovery(soda.RecoverySelective)},
		{"gobackn", soda.WithTransportRecovery(soda.RecoveryGoBackN)},
	} {
		for _, loss := range []float64{0.1, 0.3} {
			mode, loss := mode, loss
			t.Run(fmt.Sprintf("%s/loss=%v", mode.name, loss), func(t *testing.T) {
				nw := soda.NewNetwork(soda.WithSeed(13), soda.WithLoss(loss),
					soda.WithTransportWindow(8), mode.opt, soda.WithInvariantChecks())
				reply := make([]byte, 4000)
				for i := range reply {
					reply[i] = byte(i * 7)
				}
				nw.Register("sink", soda.Program{
					Init: func(c *soda.Client, _ soda.MID) {
						if err := c.Advertise(pattern); err != nil {
							panic(err)
						}
					},
					Handler: func(c *soda.Client, ev soda.Event) {
						if ev.Kind != soda.EventRequestArrival || ev.Pattern != pattern {
							return
						}
						c.AcceptCurrentExchange(soda.OK, reply[:ev.GetSize], ev.PutSize)
					},
				})
				successes := 0
				nw.Register("client", soda.Program{
					Task: func(c *soda.Client) {
						put := make([]byte, 4000)
						for i := range put {
							put[i] = byte(i * 3)
						}
						for c.Now() < 5*time.Second {
							srv, ok := c.Discover(pattern)
							if !ok {
								c.Hold(100 * time.Millisecond)
								continue
							}
							res := c.BExchange(srv, soda.OK, put, len(reply))
							if res.Status != soda.StatusSuccess {
								c.Hold(100 * time.Millisecond)
								continue
							}
							if len(res.Data) != len(reply) {
								t.Errorf("short bulk reply: %d bytes, want %d", len(res.Data), len(reply))
								return
							}
							for i := range res.Data {
								if res.Data[i] != reply[i] {
									t.Errorf("bulk reply corrupted at byte %d", i)
									return
								}
							}
							successes++
						}
					},
				})
				nw.MustAddNode(1)
				nw.MustAddNode(2)
				nw.MustAddNode(3)
				nw.MustBoot(1, "sink")
				nw.MustBoot(2, "client")
				nw.MustBoot(3, "client")
				if err := nw.Run(7 * time.Second); err != nil {
					t.Fatalf("run: %v", err)
				}
				assertGreen(t, nw)
				if successes == 0 {
					t.Error("no bulk exchange ever completed")
				}
			})
		}
	}
}

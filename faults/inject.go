package faults

import (
	"time"

	"soda/internal/bus"
	"soda/internal/sim"
)

// NodeControl performs scheduled crash and reboot events. The soda.Network
// implements it; the indirection keeps this package independent of the
// facade.
type NodeControl interface {
	// Crash fails the node at mid (no-op for unknown machines).
	Crash(mid MID)
	// Reboot rejoins the node at mid after the quiet period and, when
	// program is non-empty, boots it there.
	Reboot(mid MID, program string)
}

// GatewayControl performs scheduled gateway crash and reboot events on a
// segmented topology. The internet layer implements it; a single-segment
// network has no gateways, so its plans simply never arm these events.
type GatewayControl interface {
	// CrashGateway takes gateway i off every segment it bridges.
	CrashGateway(i int)
	// RebootGateway reattaches gateway i.
	RebootGateway(i int)
}

// Injector executes a Plan: it is the bus's FaultModel for the plan's
// window events, and schedules the plan's crash/reboot events on the
// simulation clock via Arm (nodes) and ArmGateways (gateways).
type Injector struct {
	k       *sim.Kernel
	windows []Event
	sched   []Event
	gwSched []Event
}

// NewInjector validates the plan and splits it into window and scheduled
// events.
func NewInjector(k *sim.Kernel, p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{k: k}
	for _, e := range p.Events {
		switch e.Kind {
		case Crash, Reboot:
			inj.sched = append(inj.sched, e)
		case GatewayCrash, GatewayReboot:
			inj.gwSched = append(inj.gwSched, e)
		default:
			inj.windows = append(inj.windows, e)
		}
	}
	return inj, nil
}

// Arm schedules the plan's crash and reboot events. Call once, before the
// run; ctl resolves target MIDs at fire time, so nodes may be added after
// arming.
func (inj *Injector) Arm(ctl NodeControl) {
	inj.ArmRouted(ctl, func(MID) *sim.Kernel { return inj.k })
}

// ArmRouted is Arm with each crash/reboot event scheduled on the kernel
// route maps its target to. Under the parallel coordinator that is the
// shard owning the node's segment, so segment-scoped fault events execute
// inside that shard's windows instead of forcing exclusive steps; crashes
// and reboots only touch the node and its own bus segment, which the shard
// already owns.
func (inj *Injector) ArmRouted(ctl NodeControl, route func(MID) *sim.Kernel) {
	for _, e := range inj.sched {
		e := e
		route(e.Node).At(e.Start.D(), func() {
			switch e.Kind {
			case Crash:
				ctl.Crash(e.Node)
			case Reboot:
				ctl.Reboot(e.Node, e.Program)
			}
		})
	}
}

// ArmGateways schedules the plan's gateway crash and reboot events. Call
// once, before the run, on topologies that have gateways.
func (inj *Injector) ArmGateways(ctl GatewayControl) {
	for _, e := range inj.gwSched {
		e := e
		inj.k.At(e.Start.D(), func() {
			switch e.Kind {
			case GatewayCrash:
				ctl.CrashGateway(e.Gateway)
			case GatewayReboot:
				ctl.RebootGateway(e.Gateway)
			}
		})
	}
}

// Judge implements bus.FaultModel: every active window event contributes
// to the frame's fate; a drop from any event wins. All randomness comes
// from the simulation kernel, keeping runs reproducible from the seed.
// A bare Injector judges as segment 0; use ForSegment on topologies.
func (inj *Injector) Judge(now sim.Time, src, dst MID, raw []byte) bus.FaultAction {
	return inj.judge(inj.k, 0, now, src, dst)
}

// ForSegment returns a bus.FaultModel view of the plan scoped to segment s:
// window events with a Segment field only apply on their segment, so a plan
// can mud one segment of an internetwork while the rest stay clean.
func (inj *Injector) ForSegment(s int) bus.FaultModel {
	return segmentModel{inj: inj, seg: s, k: inj.k}
}

// ForSegmentOn is ForSegment with the model's random draws taken from k —
// the coordinator shard driving segment s — so that under parallel
// execution the draws stay on the run's single canonical random stream
// (shard kernels gate their sources in commit order).
func (inj *Injector) ForSegmentOn(s int, k *sim.Kernel) bus.FaultModel {
	return segmentModel{inj: inj, seg: s, k: k}
}

type segmentModel struct {
	inj *Injector
	seg int
	k   *sim.Kernel
}

func (m segmentModel) Judge(now sim.Time, src, dst MID, raw []byte) bus.FaultAction {
	return m.inj.judge(m.k, m.seg, now, src, dst)
}

func (inj *Injector) judge(k *sim.Kernel, seg int, now sim.Time, src, dst MID) bus.FaultAction {
	var act bus.FaultAction
	rng := k.Rand()
	for i := range inj.windows {
		e := &inj.windows[i]
		if !e.active(now) {
			continue
		}
		if e.Segment != nil && *e.Segment != seg {
			continue
		}
		switch e.Kind {
		case Loss:
			if e.matchLink(src, dst) && rng.Float64() < e.Prob {
				act.Drop = true
			}
		case Burst:
			if e.matchLink(src, dst) && (now-e.Start.D())%e.Period.D() < e.BurstLen.D() {
				act.Drop = true
			}
		case Partition:
			if e.separates(src, dst) {
				act.Drop = true
			}
		case Corrupt:
			if e.matchLink(src, dst) && rng.Float64() < e.Prob {
				act.Corrupt = true
			}
		case Duplicate:
			if e.matchLink(src, dst) && rng.Float64() < e.Prob {
				act.Duplicate = true
			}
		case Delay:
			if e.matchLink(src, dst) {
				d := e.Delay.D()
				if j := e.Jitter.D(); j > 0 {
					d += time.Duration(rng.Int63n(int64(j) + 1))
				}
				act.Delay += d
			}
		}
	}
	if act.Drop {
		return bus.FaultAction{Drop: true}
	}
	return act
}

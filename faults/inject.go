package faults

import (
	"time"

	"soda/internal/bus"
	"soda/internal/sim"
)

// NodeControl performs scheduled crash and reboot events. The soda.Network
// implements it; the indirection keeps this package independent of the
// facade.
type NodeControl interface {
	// Crash fails the node at mid (no-op for unknown machines).
	Crash(mid MID)
	// Reboot rejoins the node at mid after the quiet period and, when
	// program is non-empty, boots it there.
	Reboot(mid MID, program string)
}

// Injector executes a Plan: it is the bus's FaultModel for the plan's
// window events, and schedules the plan's crash/reboot events on the
// simulation clock via Arm.
type Injector struct {
	k       *sim.Kernel
	windows []Event
	sched   []Event
}

// NewInjector validates the plan and splits it into window and scheduled
// events.
func NewInjector(k *sim.Kernel, p Plan) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{k: k}
	for _, e := range p.Events {
		switch e.Kind {
		case Crash, Reboot:
			inj.sched = append(inj.sched, e)
		default:
			inj.windows = append(inj.windows, e)
		}
	}
	return inj, nil
}

// Arm schedules the plan's crash and reboot events. Call once, before the
// run; ctl resolves target MIDs at fire time, so nodes may be added after
// arming.
func (inj *Injector) Arm(ctl NodeControl) {
	for _, e := range inj.sched {
		e := e
		inj.k.At(e.Start.D(), func() {
			switch e.Kind {
			case Crash:
				ctl.Crash(e.Node)
			case Reboot:
				ctl.Reboot(e.Node, e.Program)
			}
		})
	}
}

// Judge implements bus.FaultModel: every active window event contributes
// to the frame's fate; a drop from any event wins. All randomness comes
// from the simulation kernel, keeping runs reproducible from the seed.
func (inj *Injector) Judge(now sim.Time, src, dst MID, raw []byte) bus.FaultAction {
	var act bus.FaultAction
	rng := inj.k.Rand()
	for i := range inj.windows {
		e := &inj.windows[i]
		if !e.active(now) {
			continue
		}
		switch e.Kind {
		case Loss:
			if e.matchLink(src, dst) && rng.Float64() < e.Prob {
				act.Drop = true
			}
		case Burst:
			if e.matchLink(src, dst) && (now-e.Start.D())%e.Period.D() < e.BurstLen.D() {
				act.Drop = true
			}
		case Partition:
			if e.separates(src, dst) {
				act.Drop = true
			}
		case Corrupt:
			if e.matchLink(src, dst) && rng.Float64() < e.Prob {
				act.Corrupt = true
			}
		case Duplicate:
			if e.matchLink(src, dst) && rng.Float64() < e.Prob {
				act.Duplicate = true
			}
		case Delay:
			if e.matchLink(src, dst) {
				d := e.Delay.D()
				if j := e.Jitter.D(); j > 0 {
					d += time.Duration(rng.Int63n(int64(j) + 1))
				}
				act.Delay += d
			}
		}
	}
	if act.Drop {
		return bus.FaultAction{Drop: true}
	}
	return act
}

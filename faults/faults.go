// Package faults is the chaos layer of the SODA reproduction: declarative,
// virtual-time fault plans injected into the broadcast bus and node
// lifecycle, plus always-on invariant checkers that watch every run for
// violations of the paper's reliability guarantees (§3.6, §5.2.2).
//
// A Plan is an ordered list of timed Events. Window events (loss, burst,
// partition, corrupt, duplicate, delay) shape the medium between Start and
// Stop; point events (crash, reboot) fire once at Start. Plans round-trip
// through JSON so they can be stored next to the scenario that provoked a
// bug and replayed deterministically: the same seed and the same plan
// reproduce the same run, frame for frame.
package faults

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"soda/internal/frame"
)

// MID is a machine id (alias of the network-wide type).
type MID = frame.MID

// Kind names a fault event type.
type Kind string

const (
	// Loss drops each matching frame independently with probability Prob.
	// Src/Dst restrict the affected link (0 = any side), so a one-sided
	// setting produces asymmetric loss.
	Loss Kind = "loss"
	// Burst drops every matching frame during periodic windows: for
	// BurstLen out of every Period, the link is mud.
	Burst Kind = "burst"
	// Partition drops every frame between machines listed in different
	// Groups. Machines in no group are unaffected.
	Partition Kind = "partition"
	// Corrupt damages each matching frame with probability Prob. Damage
	// is always CRC-detectable: the receiving transport discards the
	// frame (§5.2.2), it is never delivered as a forged message.
	Corrupt Kind = "corrupt"
	// Duplicate re-delivers each matching frame with probability Prob.
	Duplicate Kind = "duplicate"
	// Delay adds Delay (plus up to Jitter, drawn uniformly) of latency to
	// each matching frame, preserving per-link FIFO order.
	Delay Kind = "delay"
	// Crash crashes Node at Start (a detectable processor failure).
	Crash Kind = "crash"
	// Reboot rejoins Node at Start (after the Delta-t quiet period) and,
	// if Program is set, boots it there.
	Reboot Kind = "reboot"
	// GatewayCrash takes the gateway indexed by Gateway off every segment
	// it bridges at Start: frames inside its store-and-forward delay are
	// lost, exactly as a router losing power mid-forward. Only meaningful
	// on a network built with soda.WithTopology.
	GatewayCrash Kind = "gatewaycrash"
	// GatewayReboot reattaches a crashed gateway at Start; its DISCOVER
	// cache restarts cold.
	GatewayReboot Kind = "gatewayreboot"
)

// Duration is a time.Duration that marshals to JSON as a string ("150ms",
// "10s") and unmarshals from either a string or integer nanoseconds.
type Duration time.Duration

// D converts to the standard type.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON encodes the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "10s"-style strings or integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch t := v.(type) {
	case string:
		parsed, err := time.ParseDuration(t)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", t, err)
		}
		*d = Duration(parsed)
		return nil
	case float64:
		*d = Duration(time.Duration(t))
		return nil
	default:
		return fmt.Errorf("faults: duration must be a string or nanoseconds, got %T", v)
	}
}

// Event is one timed fault. Which fields matter depends on Kind; Validate
// enforces the per-kind requirements.
type Event struct {
	Kind Kind `json:"kind"`
	// Start/Stop bound the event in virtual time. Stop zero means "until
	// the end of the run" for window events; point events ignore it.
	Start Duration `json:"start,omitempty"`
	Stop  Duration `json:"stop,omitempty"`
	// Src/Dst restrict link events to one direction (0 = any). A frame
	// matches when (Src == 0 || Src == frame.src) && (Dst == 0 || ...).
	Src MID `json:"src,omitempty"`
	Dst MID `json:"dst,omitempty"`
	// Prob is the per-frame probability for loss/corrupt/duplicate.
	Prob float64 `json:"prob,omitempty"`
	// Delay/Jitter parameterize delay events.
	Delay  Duration `json:"delay,omitempty"`
	Jitter Duration `json:"jitter,omitempty"`
	// Period/BurstLen parameterize burst events.
	Period   Duration `json:"period,omitempty"`
	BurstLen Duration `json:"burst_len,omitempty"`
	// Groups are the partition's sides.
	Groups [][]MID `json:"groups,omitempty"`
	// Node/Program parameterize crash and reboot events.
	Node    MID    `json:"node,omitempty"`
	Program string `json:"program,omitempty"`
	// Segment scopes a window event to one bus segment of a
	// soda.WithTopology network; nil applies to every segment. A
	// single-segment network is segment 0, so {"segment": 0} plans also
	// work without a topology.
	Segment *int `json:"segment,omitempty"`
	// Gateway is the gateway index targeted by gatewaycrash and
	// gatewayreboot events.
	Gateway int `json:"gateway,omitempty"`
}

// matchLink reports whether the event applies to the src->dst link.
func (e *Event) matchLink(src, dst MID) bool {
	return (e.Src == 0 || e.Src == src) && (e.Dst == 0 || e.Dst == dst)
}

// separates reports whether a partition event cuts the src->dst link:
// both endpoints are listed, in different groups.
func (e *Event) separates(src, dst MID) bool {
	gs, gd := -1, -1
	for gi, group := range e.Groups {
		for _, m := range group {
			if m == src {
				gs = gi
			}
			if m == dst {
				gd = gi
			}
		}
	}
	return gs >= 0 && gd >= 0 && gs != gd
}

// active reports whether a window event covers instant now.
func (e *Event) active(now time.Duration) bool {
	if now < e.Start.D() {
		return false
	}
	return e.Stop == 0 || now < e.Stop.D()
}

// Plan is a fault schedule: the unit of replay.
type Plan struct {
	Events []Event `json:"events"`
}

// Validate checks every event's per-kind requirements.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("faults: event %d (%s): %s", i, e.Kind, fmt.Sprintf(format, args...))
		}
		if e.Stop != 0 && e.Stop <= e.Start {
			return fail("stop %v not after start %v", e.Stop.D(), e.Start.D())
		}
		switch e.Kind {
		case Loss, Corrupt, Duplicate:
			if e.Prob <= 0 || e.Prob > 1 {
				return fail("prob %v outside (0, 1]", e.Prob)
			}
		case Burst:
			if e.Period <= 0 || e.BurstLen <= 0 || e.BurstLen > e.Period {
				return fail("need 0 < burst_len <= period, got %v / %v", e.BurstLen.D(), e.Period.D())
			}
		case Partition:
			if len(e.Groups) < 2 {
				return fail("need at least two groups")
			}
		case Delay:
			if e.Delay <= 0 && e.Jitter <= 0 {
				return fail("need a positive delay or jitter")
			}
		case Crash, Reboot:
			if e.Node == 0 {
				return fail("need a target node")
			}
		case GatewayCrash, GatewayReboot:
			if e.Gateway < 0 {
				return fail("gateway index %d negative", e.Gateway)
			}
		default:
			return fail("unknown kind")
		}
		if e.Segment != nil && *e.Segment < 0 {
			return fail("segment %d negative", *e.Segment)
		}
	}
	return nil
}

// Parse decodes a JSON plan and validates it.
func Parse(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("faults: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Encode renders the plan as indented JSON, suitable for a -faultplan file.
func (p *Plan) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// CrashTarget names a node the generator may crash, and the program to
// boot on it when it comes back.
type CrashTarget struct {
	Node    MID
	Program string
}

// GenConfig bounds Generate's output.
type GenConfig struct {
	// Horizon is the virtual-time extent of the run; all windows fall
	// inside [0, Horizon), with a tail of Horizon/4 left quiet so the
	// network can drain before the run ends.
	Horizon time.Duration
	// MIDs are the machines on the network (used for link targeting and
	// partition group assembly).
	MIDs []MID
	// Crashable lists nodes eligible for a crash/reboot cycle; stateless
	// services only, unless the workload tolerates lost state.
	Crashable []CrashTarget
	// MaxLoss caps generated loss/corrupt/duplicate probabilities
	// (default 0.2).
	MaxLoss float64
	// Segments, when >= 2, lets each generated window event scope itself
	// to one bus segment of a soda.WithTopology internetwork (a coin flip
	// per event, then a uniform segment). Zero keeps every event global
	// and draws nothing extra, so plans generated before this knob existed
	// reproduce byte-identically from the same seed.
	Segments int
}

// Generate builds a randomized plan from rng — the seed-sweep driver. The
// same rng state yields the same plan, keeping chaos runs replayable.
func Generate(rng *rand.Rand, cfg GenConfig) Plan {
	maxP := cfg.MaxLoss
	if maxP <= 0 {
		maxP = 0.2
	}
	// Faults stop at 3/4 of the horizon so in-flight work can settle.
	quiet := cfg.Horizon * 3 / 4
	window := func(minLen time.Duration) (Duration, Duration) {
		start := time.Duration(rng.Int63n(int64(quiet)))
		maxLen := quiet - start
		if maxLen < minLen {
			start = quiet - minLen
			maxLen = minLen
		}
		length := minLen + time.Duration(rng.Int63n(int64(maxLen-minLen)+1))
		return Duration(start), Duration(start + length)
	}
	pick := func() MID {
		if len(cfg.MIDs) == 0 || rng.Intn(2) == 0 {
			return 0 // any
		}
		return cfg.MIDs[rng.Intn(len(cfg.MIDs))]
	}
	segment := func() *int {
		if cfg.Segments < 2 || rng.Intn(2) == 0 {
			return nil // global
		}
		s := rng.Intn(cfg.Segments)
		return &s
	}
	var p Plan
	for n := 1 + rng.Intn(2); n > 0; n-- {
		start, stop := window(quiet / 8)
		src, dst := pick(), pick()
		p.Events = append(p.Events, Event{
			Kind: Loss, Start: start, Stop: stop,
			Src: src, Dst: dst,
			Prob:    0.02 + rng.Float64()*(maxP-0.02),
			Segment: segment(),
		})
	}
	if rng.Intn(2) == 0 {
		start, stop := window(quiet / 8)
		period := 50*time.Millisecond + time.Duration(rng.Int63n(int64(200*time.Millisecond)))
		p.Events = append(p.Events, Event{
			Kind: Burst, Start: start, Stop: stop,
			Period:   Duration(period),
			BurstLen: Duration(period / time.Duration(2+rng.Intn(4))),
			Segment:  segment(),
		})
	}
	if len(cfg.MIDs) >= 2 && rng.Intn(2) == 0 {
		// Random bisection; both sides end up non-empty.
		var a, b []MID
		for i, m := range cfg.MIDs {
			if i%2 == 0 != (rng.Intn(2) == 0) {
				a = append(a, m)
			} else {
				b = append(b, m)
			}
		}
		if len(a) > 0 && len(b) > 0 {
			start, stop := window(quiet / 8)
			p.Events = append(p.Events, Event{Kind: Partition, Start: start, Stop: stop, Groups: [][]MID{a, b}})
		}
	}
	if rng.Intn(2) == 0 {
		start, stop := window(quiet / 8)
		p.Events = append(p.Events, Event{Kind: Corrupt, Start: start, Stop: stop, Prob: 0.01 + rng.Float64()*maxP/2, Segment: segment()})
	}
	if rng.Intn(2) == 0 {
		start, stop := window(quiet / 8)
		p.Events = append(p.Events, Event{Kind: Duplicate, Start: start, Stop: stop, Prob: 0.01 + rng.Float64()*maxP, Segment: segment()})
	}
	if rng.Intn(2) == 0 {
		start, stop := window(quiet / 8)
		p.Events = append(p.Events, Event{
			Kind: Delay, Start: start, Stop: stop,
			Delay:   Duration(100*time.Microsecond + time.Duration(rng.Int63n(int64(2*time.Millisecond)))),
			Jitter:  Duration(time.Duration(rng.Int63n(int64(3 * time.Millisecond)))),
			Segment: segment(),
		})
	}
	for _, tgt := range cfg.Crashable {
		if rng.Intn(2) != 0 {
			continue
		}
		at := time.Duration(rng.Int63n(int64(quiet)))
		back := at + 500*time.Millisecond + time.Duration(rng.Int63n(int64(time.Second)))
		p.Events = append(p.Events, Event{Kind: Crash, Start: Duration(at), Node: tgt.Node})
		p.Events = append(p.Events, Event{Kind: Reboot, Start: Duration(back), Node: tgt.Node, Program: tgt.Program})
	}
	return p
}

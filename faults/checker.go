package faults

import (
	"fmt"

	"soda/internal/bus"
	"soda/internal/core"
	"soda/internal/frame"
	"soda/internal/sortediter"
)

// maxViolations bounds the report; past it a run is broken enough.
const maxViolations = 64

// Checker is the always-on invariant layer: it consumes the kernels'
// observer streams and the bus's delivery tap and records violations of
// the reliability guarantees the paper claims hold under arbitrary loss,
// crash, and recovery (§3.6, §5.2.2):
//
//   - exactly-once: a request signature is issued once, arrives at a
//     client handler at most once, and resolves at most once
//   - ordering: between a fixed requester and a fixed serving node,
//     requests arrive in TID (issue) order — the transport's FIFO links
//     and the kernel's send queue must not reorder them
//   - cancel/complete exclusivity: a successful CANCEL and a delivered
//     completion never both happen, and a cancelled request is never
//     successfully ACCEPTed
//   - crash staleness: after a requester crashes or dies, its old
//     requests never complete (no stale ACCEPT is ever applied); a
//     never-issued signature is never successfully accepted
//   - wire sanity: delivered frames decode cleanly unless the fault
//     model corrupted them, in which case they must never decode
//
// A Checker is fed during the run (Observe, ObserveDelivery) and
// adjudicated after it (Finish, Unresolved). It is not safe for use from
// outside the simulation's single-threaded context.
type Checker struct {
	reqs        map[frame.RequesterSig]*reqState
	order       map[link]frame.TID
	incarnation map[MID]int
	violations  []string
	overflowed  bool

	requests  int
	frames    uint64
	corrupted uint64
}

type link struct{ requester, server MID }

type reqState struct {
	issueInc int // requester incarnation at issue time
	dst      frame.ServerSig
	arrivals int
	// terminal outcome
	completed bool
	status    core.Status
	cancelled bool
	absolved  bool // requester crashed/died while the request was open
	// accept bookkeeping at the serving side
	acceptSuccess int
	acceptFails   int
}

// NewChecker returns an empty checker.
func NewChecker() *Checker {
	return &Checker{
		reqs:        make(map[frame.RequesterSig]*reqState),
		order:       make(map[link]frame.TID),
		incarnation: make(map[MID]int),
	}
}

func (ch *Checker) violate(format string, args ...any) {
	if len(ch.violations) >= maxViolations {
		ch.overflowed = true
		return
	}
	ch.violations = append(ch.violations, fmt.Sprintf(format, args...))
}

// Observe consumes one kernel observer event. Wire it to every node via
// core.Config.Observer (soda.WithInvariantChecks does this).
func (ch *Checker) Observe(ev core.ObsEvent) {
	switch ev.Kind {
	case core.ObsIssue:
		if _, dup := ch.reqs[ev.Sig]; dup {
			ch.violate("t=%v: %v issued twice (TID reuse)", ev.At, ev.Sig)
			return
		}
		ch.requests++
		ch.reqs[ev.Sig] = &reqState{issueInc: ch.incarnation[ev.Node], dst: ev.Dst}

	case core.ObsArrival:
		s := ch.reqs[ev.Sig]
		if s == nil {
			ch.violate("t=%v: arrival of never-issued %v at node %d", ev.At, ev.Sig, ev.Node)
			return
		}
		s.arrivals++
		if s.arrivals > 1 {
			ch.violate("t=%v: %v delivered %d times (exactly-once broken)", ev.At, ev.Sig, s.arrivals)
		}
		if s.dst.MID != frame.BroadcastMID && ev.Node != s.dst.MID {
			ch.violate("t=%v: %v addressed to node %d but arrived at %d", ev.At, ev.Sig, s.dst.MID, ev.Node)
		}
		l := link{requester: ev.Sig.MID, server: ev.Node}
		if last, seen := ch.order[l]; seen && ev.Sig.TID <= last {
			ch.violate("t=%v: %v arrived at node %d after TID %d (per-pair order broken)", ev.At, ev.Sig, ev.Node, last)
		}
		ch.order[l] = ev.Sig.TID

	case core.ObsComplete:
		s := ch.reqs[ev.Sig]
		if s == nil {
			ch.violate("t=%v: completion of never-issued %v", ev.At, ev.Sig)
			return
		}
		if ev.Node != ev.Sig.MID {
			ch.violate("t=%v: completion of %v delivered at node %d", ev.At, ev.Sig, ev.Node)
		}
		if s.absolved {
			ch.violate("t=%v: %v completed (%v) after its requester crashed — stale state survived recovery", ev.At, ev.Sig, ev.Status)
		}
		if s.completed {
			ch.violate("t=%v: %v completed twice (second: %v)", ev.At, ev.Sig, ev.Status)
		}
		if s.cancelled {
			ch.violate("t=%v: %v completed (%v) after a successful CANCEL", ev.At, ev.Sig, ev.Status)
		}
		s.completed = true
		s.status = ev.Status

	case core.ObsCancelled:
		s := ch.reqs[ev.Sig]
		if s == nil {
			ch.violate("t=%v: CANCEL granted for never-issued %v", ev.At, ev.Sig)
			return
		}
		if s.completed {
			ch.violate("t=%v: CANCEL granted for %v after it completed (%v)", ev.At, ev.Sig, s.status)
		}
		if s.cancelled {
			ch.violate("t=%v: CANCEL granted twice for %v", ev.At, ev.Sig)
		}
		s.cancelled = true

	case core.ObsAccept:
		s := ch.reqs[ev.Sig]
		if s == nil {
			if ev.Accept == core.AcceptSuccess {
				ch.violate("t=%v: node %d successfully accepted never-issued %v (guessed signature)", ev.At, ev.Node, ev.Sig)
			}
			return
		}
		if ev.Accept != core.AcceptSuccess {
			s.acceptFails++
			return
		}
		s.acceptSuccess++
		if s.acceptSuccess > 1 {
			ch.violate("t=%v: %v accepted successfully %d times", ev.At, ev.Sig, s.acceptSuccess)
		}
		if s.dst.MID != frame.BroadcastMID && ev.Node != s.dst.MID {
			ch.violate("t=%v: %v addressed to node %d but accepted at %d", ev.At, ev.Sig, s.dst.MID, ev.Node)
		}
		if s.cancelled {
			ch.violate("t=%v: %v accepted successfully after a successful CANCEL", ev.At, ev.Sig)
		}

	case core.ObsCrash, core.ObsDie:
		// The node's client state is gone: its open requests can never
		// legitimately resolve now; any later completion is stale.
		ch.incarnation[ev.Node]++
		for sig, s := range ch.reqs {
			if sig.MID == ev.Node && !s.completed && !s.cancelled && s.issueInc == ch.incarnation[ev.Node]-1 {
				s.absolved = true
			}
		}
	}
}

// ObserveDelivery consumes one bus delivery: the CRC stand-in must reject
// exactly the frames the fault model damaged.
func (ch *Checker) ObserveDelivery(ev bus.DeliveryEvent) {
	ch.frames++
	_, err := frame.DecodeTransport(ev.Raw)
	if ev.Corrupted {
		ch.corrupted++
		if err == nil {
			ch.violate("t=%v: corrupted frame %d->%d decoded cleanly (undetectable damage)", ev.At, ev.Src, ev.Dst)
		}
		return
	}
	if err != nil {
		ch.violate("t=%v: undamaged frame %d->%d failed transport decode: %v", ev.At, ev.Src, ev.Dst, err)
	}
}

// sortedSigs returns the tracked signatures in (MID, TID) order, for
// deterministic reports.
func (ch *Checker) sortedSigs() []frame.RequesterSig {
	return sortediter.KeysFunc(ch.reqs, func(a, b frame.RequesterSig) bool {
		if a.MID != b.MID {
			return a.MID < b.MID
		}
		return a.TID < b.TID
	})
}

// Finish runs the end-of-run cross-checks (requester and server views of
// each request must agree) and returns every violation recorded. Call it
// once the simulation is over; it may be called repeatedly.
func (ch *Checker) Finish() []string {
	out := append([]string(nil), ch.violations...)
	for _, sig := range ch.sortedSigs() {
		s := ch.reqs[sig]
		if s.absolved {
			// The requester's crash voids both views; nothing to agree on.
			continue
		}
		// A server-side SUCCESS with a requester-side CRASHED is the
		// two-generals gap the paper accepts (the accept reply can die
		// with the link); any other disagreement is a protocol bug.
		if s.acceptSuccess > 0 && s.completed && s.status != core.StatusSuccess && s.status != core.StatusCrashed {
			out = append(out, fmt.Sprintf("%v: server view SUCCESS but requester completed %v", sig, s.status))
		}
	}
	if ch.overflowed {
		out = append(out, fmt.Sprintf("... violation report truncated at %d entries", maxViolations))
	}
	return out
}

// Unresolved returns the signatures of requests that are still open: not
// completed, not cancelled, and not voided by their requester's death. At
// the end of a settled run this must be empty — anything listed is stuck.
func (ch *Checker) Unresolved() []frame.RequesterSig {
	var out []frame.RequesterSig
	for _, sig := range ch.sortedSigs() {
		s := ch.reqs[sig]
		if !s.completed && !s.cancelled && !s.absolved {
			out = append(out, sig)
		}
	}
	return out
}

// Requests reports how many distinct requests the checker tracked.
func (ch *Checker) Requests() int { return ch.requests }

// Frames reports delivered frames observed, and how many were corrupted.
func (ch *Checker) Frames() (total, corrupted uint64) { return ch.frames, ch.corrupted }

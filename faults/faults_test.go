package faults

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"soda/internal/bus"
	"soda/internal/core"
	"soda/internal/frame"
	"soda/internal/sim"
)

func d(v time.Duration) Duration { return Duration(v) }

func TestPlanJSONRoundTrip(t *testing.T) {
	p := Plan{Events: []Event{
		{Kind: Loss, Start: d(time.Second), Stop: d(5 * time.Second), Dst: 3, Prob: 0.1},
		{Kind: Partition, Start: d(2 * time.Second), Stop: d(12 * time.Second), Groups: [][]MID{{1, 2}, {3, 4}}},
		{Kind: Crash, Start: d(6 * time.Second), Node: 2},
		{Kind: Reboot, Start: d(7 * time.Second), Node: 2, Program: "fs"},
	}}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip mismatch:\nhave %+v\nwant %+v", back, p)
	}
}

func TestPlanParseDurationStrings(t *testing.T) {
	p, err := Parse([]byte(`{"events": [
		{"kind": "loss", "start": "500ms", "stop": "10s", "prob": 0.25},
		{"kind": "burst", "period": "100ms", "burst_len": "20ms"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.Events[0].Start.D() != 500*time.Millisecond || p.Events[0].Stop.D() != 10*time.Second {
		t.Fatalf("durations parsed wrong: %+v", p.Events[0])
	}
	if p.Events[1].Period.D() != 100*time.Millisecond {
		t.Fatalf("period parsed wrong: %+v", p.Events[1])
	}
}

func TestPlanValidateRejectsBadEvents(t *testing.T) {
	bad := []Event{
		{Kind: Loss, Prob: 0},                   // no probability
		{Kind: Loss, Prob: 1.5},                 // out of range
		{Kind: Partition, Groups: [][]MID{{1}}}, // one group
		{Kind: Burst, Period: d(time.Second)},   // no burst length
		{Kind: Crash},                           // no node
		{Kind: Delay},                           // no delay
		{Kind: "gremlins"},                      // unknown
		{Kind: Loss, Prob: 0.5, Start: d(5 * time.Second), Stop: d(time.Second)}, // stop before start
	}
	for _, e := range bad {
		p := Plan{Events: []Event{e}}
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", e)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := GenConfig{
		Horizon:   20 * time.Second,
		MIDs:      []MID{1, 2, 3, 4, 5},
		Crashable: []CrashTarget{{Node: 5, Program: "srv"}},
	}
	a := Generate(rand.New(rand.NewSource(99)), cfg)
	b := Generate(rand.New(rand.NewSource(99)), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	c := Generate(rand.New(rand.NewSource(100)), cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestInjectorJudgePartitionAndWindows(t *testing.T) {
	k := sim.New(1)
	inj, err := NewInjector(k, Plan{Events: []Event{
		{Kind: Partition, Start: d(time.Second), Stop: d(2 * time.Second), Groups: [][]MID{{1, 2}, {3}}},
		{Kind: Loss, Start: 0, Stop: d(time.Second), Src: 1, Dst: 2, Prob: 1.0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Asymmetric total loss on 1->2 before t=1s; the reverse link is clean.
	if !inj.Judge(0, 1, 2, nil).Drop {
		t.Error("loss window did not drop 1->2")
	}
	if inj.Judge(0, 2, 1, nil).Drop {
		t.Error("loss window dropped the reverse link (asymmetry broken)")
	}
	// Partition active only inside its window, only across groups.
	if inj.Judge(500*time.Millisecond, 1, 3, nil).Drop {
		t.Error("partition dropped before its start")
	}
	if !inj.Judge(1500*time.Millisecond, 1, 3, nil).Drop {
		t.Error("partition did not cut a cross-group link")
	}
	if !inj.Judge(1500*time.Millisecond, 3, 1, nil).Drop {
		t.Error("partition is not bidirectional")
	}
	if inj.Judge(1500*time.Millisecond, 1, 2, nil).Drop {
		t.Error("partition dropped an intra-group link")
	}
	if inj.Judge(1500*time.Millisecond, 1, 7, nil).Drop {
		t.Error("partition affected an unlisted machine")
	}
	if inj.Judge(2500*time.Millisecond, 1, 3, nil).Drop {
		t.Error("partition outlived its stop time")
	}
}

func TestInjectorJudgeBurst(t *testing.T) {
	k := sim.New(1)
	inj, err := NewInjector(k, Plan{Events: []Event{
		{Kind: Burst, Start: d(time.Second), Period: d(100 * time.Millisecond), BurstLen: d(30 * time.Millisecond)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Inside the burst phase of each period frames drop; outside they pass.
	if !inj.Judge(time.Second+10*time.Millisecond, 1, 2, nil).Drop {
		t.Error("burst did not drop inside its window")
	}
	if inj.Judge(time.Second+50*time.Millisecond, 1, 2, nil).Drop {
		t.Error("burst dropped outside its window")
	}
	if !inj.Judge(time.Second+110*time.Millisecond, 1, 2, nil).Drop {
		t.Error("burst did not recur on the next period")
	}
}

func TestInjectorJudgeDelayAndDuplicate(t *testing.T) {
	k := sim.New(1)
	inj, err := NewInjector(k, Plan{Events: []Event{
		{Kind: Delay, Delay: d(2 * time.Millisecond)},
		{Kind: Duplicate, Prob: 1.0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	act := inj.Judge(0, 1, 2, nil)
	if act.Delay != 2*time.Millisecond || !act.Duplicate || act.Drop {
		t.Fatalf("action = %+v, want delay 2ms + duplicate", act)
	}
}

// obs builds checker input tersely.
func obs(kind core.ObsKind, node MID, sig frame.RequesterSig) core.ObsEvent {
	return core.ObsEvent{Kind: kind, Node: node, Sig: sig}
}

func TestCheckerExactlyOnceAndOrdering(t *testing.T) {
	ch := NewChecker()
	sig1 := frame.RequesterSig{MID: 1, TID: 10}
	sig2 := frame.RequesterSig{MID: 1, TID: 11}
	issue := func(sig frame.RequesterSig) core.ObsEvent {
		ev := obs(core.ObsIssue, sig.MID, sig)
		ev.Dst = frame.ServerSig{MID: 2}
		return ev
	}
	ch.Observe(issue(sig1))
	ch.Observe(issue(sig2))
	// Arrive out of order at node 2: an ordering violation.
	ch.Observe(obs(core.ObsArrival, 2, sig2))
	ch.Observe(obs(core.ObsArrival, 2, sig1))
	// sig2 delivered a second time: exactly-once violation.
	ch.Observe(obs(core.ObsArrival, 2, sig2))
	v := ch.Finish()
	if len(v) != 2 {
		t.Fatalf("violations = %v, want ordering + duplicate delivery", v)
	}
}

func TestCheckerCleanRunIsGreen(t *testing.T) {
	ch := NewChecker()
	sig := frame.RequesterSig{MID: 1, TID: 7}
	ev := obs(core.ObsIssue, 1, sig)
	ev.Dst = frame.ServerSig{MID: 2}
	ch.Observe(ev)
	ch.Observe(obs(core.ObsArrival, 2, sig))
	acc := obs(core.ObsAccept, 2, sig)
	acc.Accept = core.AcceptSuccess
	ch.Observe(acc)
	done := obs(core.ObsComplete, 1, sig)
	done.Status = core.StatusSuccess
	ch.Observe(done)
	if v := ch.Finish(); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}
	if u := ch.Unresolved(); len(u) != 0 {
		t.Fatalf("clean run left unresolved requests: %v", u)
	}
}

func TestCheckerStaleAndGuessedSignatures(t *testing.T) {
	ch := NewChecker()
	sig := frame.RequesterSig{MID: 1, TID: 5}
	ev := obs(core.ObsIssue, 1, sig)
	ev.Dst = frame.ServerSig{MID: 2}
	ch.Observe(ev)
	// Requester dies; its open request is absolved...
	ch.Observe(obs(core.ObsDie, 1, frame.RequesterSig{}))
	if u := ch.Unresolved(); len(u) != 0 {
		t.Fatalf("death did not absolve open requests: %v", u)
	}
	// ...so a completion arriving afterwards is stale state.
	done := obs(core.ObsComplete, 1, sig)
	done.Status = core.StatusSuccess
	ch.Observe(done)
	// And a successful accept of a signature never issued is a forgery.
	acc := obs(core.ObsAccept, 2, frame.RequesterSig{MID: 9, TID: 99})
	acc.Accept = core.AcceptSuccess
	ch.Observe(acc)
	v := ch.Finish()
	if len(v) != 2 {
		t.Fatalf("violations = %v, want stale completion + guessed signature", v)
	}
}

func TestCheckerCancelCompleteExclusivity(t *testing.T) {
	ch := NewChecker()
	sig := frame.RequesterSig{MID: 1, TID: 3}
	ev := obs(core.ObsIssue, 1, sig)
	ev.Dst = frame.ServerSig{MID: 2}
	ch.Observe(ev)
	ch.Observe(obs(core.ObsCancelled, 1, sig))
	acc := obs(core.ObsAccept, 2, sig)
	acc.Accept = core.AcceptSuccess
	ch.Observe(acc)
	if v := ch.Finish(); len(v) != 1 {
		t.Fatalf("violations = %v, want accept-after-cancel", v)
	}
}

func TestCheckerDeliveryTap(t *testing.T) {
	ch := NewChecker()
	good := frame.EncodeTransport(&frame.TransportFrame{Kind: frame.TransportData, Src: 1, Dst: 2, Payload: []byte("ok")})
	ch.ObserveDelivery(bus.DeliveryEvent{Src: 1, Dst: 2, Raw: good})
	if v := ch.Finish(); len(v) != 0 {
		t.Fatalf("clean frame flagged: %v", v)
	}
	// A frame marked corrupted that still decodes is undetectable damage.
	ch.ObserveDelivery(bus.DeliveryEvent{Src: 1, Dst: 2, Raw: good, Corrupted: true})
	if v := ch.Finish(); len(v) != 1 {
		t.Fatalf("violations = %v, want undetectable-damage", v)
	}
	total, corrupted := ch.Frames()
	if total != 2 || corrupted != 1 {
		t.Fatalf("Frames() = %d, %d; want 2, 1", total, corrupted)
	}
}

// recordingGateways is a GatewayControl that records scheduled calls.
type recordingGateways struct{ calls []string }

func (r *recordingGateways) CrashGateway(i int)  { r.calls = append(r.calls, "crash") }
func (r *recordingGateways) RebootGateway(i int) { r.calls = append(r.calls, "reboot") }

// TestArmGatewaysSchedules pins that gateway events fire on the simulation
// clock in plan order and that node Arm ignores them.
func TestArmGatewaysSchedules(t *testing.T) {
	k := sim.New(1)
	inj, err := NewInjector(k, Plan{Events: []Event{
		{Kind: GatewayCrash, Start: d(time.Second), Gateway: 0},
		{Kind: GatewayReboot, Start: d(3 * time.Second), Gateway: 0},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingGateways{}
	inj.ArmGateways(rec)
	if err := k.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(rec.calls) != 1 || rec.calls[0] != "crash" {
		t.Fatalf("calls at t=2s: %v, want [crash]", rec.calls)
	}
	if err := k.RunUntil(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(rec.calls) != 2 || rec.calls[1] != "reboot" {
		t.Fatalf("calls at t=4s: %v, want [crash reboot]", rec.calls)
	}
}

// TestForSegmentScopesWindows pins the segment filter: a Loss window with
// Segment set drops only on that segment's FaultModel view; a bare Judge
// call is segment 0.
func TestForSegmentScopesWindows(t *testing.T) {
	k := sim.New(1)
	seg := 1
	inj, err := NewInjector(k, Plan{Events: []Event{
		{Kind: Loss, Start: d(time.Second), Stop: d(10 * time.Second), Prob: 1, Segment: &seg},
	}})
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(2 * time.Second)
	if act := inj.ForSegment(1).Judge(now, 1, 2, nil); !act.Drop {
		t.Error("targeted segment did not drop")
	}
	if act := inj.ForSegment(0).Judge(now, 1, 2, nil); act.Drop {
		t.Error("untargeted segment dropped")
	}
	if act := inj.Judge(now, 1, 2, nil); act.Drop {
		t.Error("bare Judge (segment 0) dropped a segment-1 window")
	}
	if act := inj.ForSegment(1).Judge(sim.Time(11*time.Second), 1, 2, nil); act.Drop {
		t.Error("window dropped after its stop time")
	}
}

// TestValidateGatewayAndSegmentEvents covers the gateway/segment arms of
// Plan.Validate.
func TestValidateGatewayAndSegmentEvents(t *testing.T) {
	good := Plan{Events: []Event{
		{Kind: GatewayCrash, Start: d(time.Second), Gateway: 1},
		{Kind: GatewayReboot, Start: d(2 * time.Second), Gateway: 1},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid gateway plan rejected: %v", err)
	}
	badGW := Plan{Events: []Event{{Kind: GatewayCrash, Gateway: -1}}}
	if err := badGW.Validate(); err == nil {
		t.Error("negative gateway index accepted")
	}
	neg := -1
	badSeg := Plan{Events: []Event{{Kind: Loss, Prob: 0.5, Segment: &neg}}}
	if err := badSeg.Validate(); err == nil {
		t.Error("negative segment accepted")
	}
}

// Package rmr implements remote memory reference over SODA (§4.2.3): PEEK
// and POKE against a well-known entry point, with the REQUEST argument
// naming the address and the buffer size giving the extent.
//
// Because the server ACCEPTs one request at a time, each PEEK/POKE is
// atomic; a compare-and-swap built from a single EXCHANGE is provided as
// the synchronization primitive the section calls for.
package rmr

import (
	"fmt"

	"soda"
)

// EntryPattern is the well-known RMR entry point.
var EntryPattern = soda.WellKnownPattern(0o7070)

// Op codes carried in the high bits of the argument; the low 24 bits are
// the address.
const (
	opPeek int32 = iota + 1
	opPoke
	opCAS

	addrBits = 24
	addrMask = 1<<addrBits - 1
)

func packArg(op int32, addr int) int32 { return op<<addrBits | int32(addr)&addrMask }

// Server returns a program exposing size bytes of memory for remote
// reference. inspect, when non-nil, observes each operation (tests,
// tracing).
func Server(size int, inspect func(op string, addr, n int)) soda.Program {
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			c.SetStash(make([]byte, size))
			if err := c.Advertise(EntryPattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival || ev.Pattern != EntryPattern {
				return
			}
			mem := c.Stash().([]byte)
			op := ev.Arg >> addrBits
			addr := int(ev.Arg & addrMask)
			switch op {
			case opPeek:
				n := ev.GetSize
				if addr < 0 || addr+n > len(mem) {
					c.RejectCurrent()
					return
				}
				c.AcceptCurrentGet(soda.OK, mem[addr:addr+n])
				if inspect != nil {
					inspect("peek", addr, n)
				}
			case opPoke:
				n := ev.PutSize
				if addr < 0 || addr+n > len(mem) {
					c.RejectCurrent()
					return
				}
				res := c.AcceptCurrentPut(soda.OK, n)
				if res.Status == soda.AcceptSuccess {
					copy(mem[addr:], res.Data)
					if inspect != nil {
						inspect("poke", addr, len(res.Data))
					}
				}
			case opCAS:
				// EXCHANGE: put = [old|new] halves; get returns the
				// previous contents. The swap applies only when the old
				// half matches.
				n := ev.PutSize / 2
				if addr < 0 || addr+n > len(mem) || ev.PutSize%2 != 0 {
					c.RejectCurrent()
					return
				}
				prev := make([]byte, n)
				copy(prev, mem[addr:addr+n])
				res := c.AcceptCurrentExchange(soda.OK, prev, ev.PutSize)
				if res.Status != soda.AcceptSuccess || len(res.Data) != 2*n {
					return
				}
				oldv, newv := res.Data[:n], res.Data[n:]
				if bytesEqual(prev, oldv) {
					copy(mem[addr:], newv)
					if inspect != nil {
						inspect("cas", addr, n)
					}
				}
			default:
				c.RejectCurrent()
			}
		},
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Error reports a failed remote memory reference.
type Error struct {
	Op     string
	Addr   int
	Status soda.Status
}

func (e *Error) Error() string {
	return fmt.Sprintf("rmr: %s at %#x failed with status %v", e.Op, e.Addr, e.Status)
}

// Peek reads size bytes at addr on the remote machine (a GET, §4.2.3).
func Peek(c *soda.Client, dst soda.MID, addr, size int) ([]byte, error) {
	sig := soda.ServerSig{MID: dst, Pattern: EntryPattern}
	res := c.BGet(sig, packArg(opPeek, addr), size)
	if res.Status != soda.StatusSuccess {
		return nil, &Error{Op: "peek", Addr: addr, Status: res.Status}
	}
	return res.Data, nil
}

// Poke installs value at addr on the remote machine (a PUT, §4.2.3).
func Poke(c *soda.Client, dst soda.MID, addr int, value []byte) error {
	sig := soda.ServerSig{MID: dst, Pattern: EntryPattern}
	res := c.BPut(sig, packArg(opPoke, addr), value)
	if res.Status != soda.StatusSuccess {
		return &Error{Op: "poke", Addr: addr, Status: res.Status}
	}
	return nil
}

// CompareAndSwap atomically replaces mem[addr:addr+len(old)] with new if it
// equals old, returning the previous contents and whether the swap applied.
func CompareAndSwap(c *soda.Client, dst soda.MID, addr int, oldv, newv []byte) (prev []byte, swapped bool, err error) {
	if len(oldv) != len(newv) {
		return nil, false, fmt.Errorf("rmr: cas operand sizes differ (%d vs %d)", len(oldv), len(newv))
	}
	sig := soda.ServerSig{MID: dst, Pattern: EntryPattern}
	put := make([]byte, 0, 2*len(oldv))
	put = append(put, oldv...)
	put = append(put, newv...)
	res := c.BExchange(sig, packArg(opCAS, addr), put, len(oldv))
	if res.Status != soda.StatusSuccess {
		return nil, false, &Error{Op: "cas", Addr: addr, Status: res.Status}
	}
	return res.Data, bytesEqual(res.Data, oldv), nil
}

package rmr

import (
	"bytes"
	"testing"
	"time"

	"soda"
)

func runClient(t *testing.T, task func(c *soda.Client)) {
	t.Helper()
	nw := soda.NewNetwork()
	nw.Register("mem", Server(256, nil))
	done := false
	nw.Register("client", soda.Program{
		Task: func(c *soda.Client) {
			task(c)
			done = true
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "mem")
	nw.MustBoot(2, "client")
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("client task did not finish")
	}
}

func TestPokeThenPeek(t *testing.T) {
	runClient(t, func(c *soda.Client) {
		if err := Poke(c, 1, 16, []byte("stored")); err != nil {
			t.Errorf("poke: %v", err)
			return
		}
		got, err := Peek(c, 1, 16, 6)
		if err != nil {
			t.Errorf("peek: %v", err)
			return
		}
		if string(got) != "stored" {
			t.Errorf("peek = %q", got)
		}
		// Unwritten memory reads as zero.
		z, err := Peek(c, 1, 100, 4)
		if err != nil {
			t.Errorf("peek zero: %v", err)
			return
		}
		if !bytes.Equal(z, []byte{0, 0, 0, 0}) {
			t.Errorf("zero peek = %v", z)
		}
	})
}

func TestOutOfRangeRejected(t *testing.T) {
	runClient(t, func(c *soda.Client) {
		if err := Poke(c, 1, 250, []byte("too much data")); err == nil {
			t.Error("out-of-range poke succeeded")
		}
		if _, err := Peek(c, 1, 255, 10); err == nil {
			t.Error("out-of-range peek succeeded")
		}
	})
}

func TestCompareAndSwap(t *testing.T) {
	runClient(t, func(c *soda.Client) {
		if err := Poke(c, 1, 0, []byte{1, 2}); err != nil {
			t.Errorf("poke: %v", err)
			return
		}
		prev, swapped, err := CompareAndSwap(c, 1, 0, []byte{1, 2}, []byte{9, 9})
		if err != nil || !swapped || !bytes.Equal(prev, []byte{1, 2}) {
			t.Errorf("cas1 = prev %v swapped %v err %v", prev, swapped, err)
			return
		}
		prev, swapped, err = CompareAndSwap(c, 1, 0, []byte{1, 2}, []byte{7, 7})
		if err != nil || swapped || !bytes.Equal(prev, []byte{9, 9}) {
			t.Errorf("cas2 = prev %v swapped %v err %v", prev, swapped, err)
			return
		}
		got, _ := Peek(c, 1, 0, 2)
		if !bytes.Equal(got, []byte{9, 9}) {
			t.Errorf("final memory = %v", got)
		}
	})
}

func TestCASAsMutexBetweenClients(t *testing.T) {
	// Two clients loop on CAS(0: 0→1) as a spinlock, increment a shared
	// counter at address 8 under the lock, then release. The counter must
	// equal the total number of increments.
	nw := soda.NewNetwork()
	nw.Register("mem", Server(64, nil))
	const perClient = 5
	worker := soda.Program{
		Task: func(c *soda.Client) {
			for i := 0; i < perClient; i++ {
				for {
					_, swapped, err := CompareAndSwap(c, 1, 0, []byte{0}, []byte{1})
					if err != nil {
						t.Errorf("cas: %v", err)
						return
					}
					if swapped {
						break
					}
					c.Hold(5 * time.Millisecond)
				}
				v, err := Peek(c, 1, 8, 1)
				if err != nil {
					t.Errorf("peek: %v", err)
					return
				}
				if err := Poke(c, 1, 8, []byte{v[0] + 1}); err != nil {
					t.Errorf("poke: %v", err)
					return
				}
				if _, _, err := CompareAndSwap(c, 1, 0, []byte{1}, []byte{0}); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		},
	}
	nw.Register("worker", worker)
	nw.MustAddNode(1)
	nw.MustBoot(1, "mem")
	nw.MustAddNode(2)
	nw.MustAddNode(3)
	nw.MustBoot(2, "worker")
	nw.MustBoot(3, "worker")
	if err := nw.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Read the final counter through a fresh client.
	var final []byte
	nw.Register("reader", soda.Program{
		Task: func(c *soda.Client) { final, _ = Peek(c, 1, 8, 1) },
	})
	nw.MustAddNode(4)
	nw.MustBoot(4, "reader")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(final) != 1 || final[0] != 2*perClient {
		t.Fatalf("counter = %v, want %d", final, 2*perClient)
	}
}

package ports

import (
	"fmt"
	"testing"
	"time"

	"soda"
)

var portPat = soda.WellKnownPattern(0o100)

func TestInputPortFIFO(t *testing.T) {
	nw := soda.NewNetwork()
	var got []string
	nw.Register("port", InputPort(portPat, 8, func(_ *soda.Client, m Message) {
		got = append(got, string(m.Data))
	}))
	nw.Register("writer", soda.Program{
		Task: func(c *soda.Client) {
			sig := soda.ServerSig{MID: 1, Pattern: portPat}
			for i := 0; i < 5; i++ {
				if st := Write(c, sig, []byte(fmt.Sprintf("w%d", i))); st != soda.StatusSuccess {
					t.Errorf("write %d: %v", i, st)
				}
			}
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "port")
	nw.MustBoot(2, "writer")
	if err := nw.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("port read %d messages: %v", len(got), got)
	}
	for i, m := range got {
		if want := fmt.Sprintf("w%d", i); m != want {
			t.Fatalf("got[%d] = %q, want %q", i, m, want)
		}
	}
}

func TestInputPortManyWriters(t *testing.T) {
	nw := soda.NewNetwork()
	byWriter := map[soda.MID][]string{}
	nw.Register("port", InputPort(portPat, 8, func(_ *soda.Client, m Message) {
		byWriter[m.From] = append(byWriter[m.From], string(m.Data))
	}))
	mkWriter := func() soda.Program {
		return soda.Program{
			Task: func(c *soda.Client) {
				sig := soda.ServerSig{MID: 1, Pattern: portPat}
				for i := 0; i < 3; i++ {
					Write(c, sig, []byte(fmt.Sprintf("%d-%d", c.MID(), i)))
				}
			},
		}
	}
	nw.Register("writer", mkWriter())
	nw.MustAddNode(1)
	nw.MustBoot(1, "port")
	for mid := soda.MID(2); mid <= 4; mid++ {
		nw.MustAddNode(mid)
		nw.MustBoot(mid, "writer")
	}
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for mid := soda.MID(2); mid <= 4; mid++ {
		msgs := byWriter[mid]
		if len(msgs) != 3 {
			t.Fatalf("writer %d delivered %d messages: %v", mid, len(msgs), msgs)
		}
		for i, m := range msgs {
			if want := fmt.Sprintf("%d-%d", mid, i); m != want {
				t.Fatalf("writer %d out of order: %v", mid, msgs)
			}
		}
	}
}

func TestPriorityPortOrdersByArg(t *testing.T) {
	nw := soda.NewNetwork()
	var got []int32
	slowConsumer := PriorityPort(portPat, 8, func(c *soda.Client, m Message) {
		got = append(got, m.Priority)
		c.Hold(50 * time.Millisecond) // let writers pile up
	})
	nw.Register("port", slowConsumer)
	nw.Register("writer", soda.Program{
		Task: func(c *soda.Client) {
			sig := soda.ServerSig{MID: 1, Pattern: portPat}
			// First write occupies the consumer; the rest queue and must
			// come out highest-priority-first.
			WritePriority(c, sig, 0, []byte("x"))
			for _, p := range []int32{2, 9, 5, 7} {
				WritePriority(c, sig, p, []byte("x"))
			}
		},
	})
	nw.MustAddNode(1)
	nw.MustAddNode(2)
	nw.MustBoot(1, "port")
	nw.MustBoot(2, "writer")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	// The writer blocks on each Write (bufferless port), so with a single
	// writer arrival order is submission order; priorities apply when the
	// queue holds several. At minimum the first is 0 and all arrive.
	if got[0] != 0 {
		t.Fatalf("first message priority = %d, want 0", got[0])
	}
}

func TestPriorityQueueDrainsHighestFirst(t *testing.T) {
	// Drive the heap directly through three concurrent writers that all
	// enqueue while the consumer is stalled.
	nw := soda.NewNetwork()
	var got []int32
	started := false
	nw.Register("port", PriorityPort(portPat, 8, func(c *soda.Client, m Message) {
		if !started {
			started = true
			c.Hold(300 * time.Millisecond) // all writers enqueue meanwhile
		}
		got = append(got, m.Priority)
	}))
	mkWriter := func(p int32) soda.Program {
		return soda.Program{
			Task: func(c *soda.Client) {
				WritePriority(c, soda.ServerSig{MID: 1, Pattern: portPat}, p, []byte("x"))
			},
		}
	}
	nw.Register("w1", mkWriter(1))
	nw.Register("w5", mkWriter(5))
	nw.Register("w9", mkWriter(9))
	nw.Register("starter", mkWriter(0))
	nw.MustAddNode(1)
	nw.MustBoot(1, "port")
	nw.MustAddNode(2)
	nw.MustBoot(2, "starter")
	if err := nw.Run(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	nw.MustAddNode(3)
	nw.MustAddNode(4)
	nw.MustAddNode(5)
	nw.MustBoot(3, "w1")
	nw.MustBoot(4, "w5")
	nw.MustBoot(5, "w9")
	if err := nw.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %v, want 4 messages", got)
	}
	if got[1] != 9 || got[2] != 5 || got[3] != 1 {
		t.Fatalf("drain order = %v, want [0 9 5 1]", got)
	}
}

func TestPortBackpressureClosesHandler(t *testing.T) {
	// Queue capacity 2 with a stalled consumer: writers beyond capacity
	// are held off by the CLOSED handler (their kernels retry), and all
	// writes eventually land.
	nw := soda.NewNetwork()
	var got int
	release := false
	nw.Register("port", InputPort(portPat, 2, func(c *soda.Client, m Message) {
		if !release {
			release = true
			c.Hold(400 * time.Millisecond)
		}
		got++
	}))
	nw.Register("writer", soda.Program{
		Task: func(c *soda.Client) {
			sig := soda.ServerSig{MID: 1, Pattern: portPat}
			for i := 0; i < 3; i++ {
				if st := Write(c, sig, []byte{byte(i)}); st != soda.StatusSuccess {
					t.Errorf("write: %v", st)
				}
			}
		},
	})
	nw.MustAddNode(1)
	nw.MustBoot(1, "port")
	for mid := soda.MID(2); mid <= 3; mid++ {
		nw.MustAddNode(mid)
		nw.MustBoot(mid, "writer")
	}
	if err := nw.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("consumed %d messages, want 6", got)
	}
}

// Package ports implements input ports and priority queues over SODA
// (§4.2.1).
//
// An input port is a queueing point for incoming messages: many writers,
// one reader. SODA's kernel is bufferless, so the port is built exactly as
// the thesis prescribes: the handler enqueues requester signatures (CLOSING
// the handler when the queue fills, which makes the requesters' kernels
// retry), and the task loop ACCEPTs queued requests in order — FIFO for a
// plain port, highest-priority-first for a priority port, with the REQUEST
// argument as the priority.
package ports

import (
	"container/heap"

	"soda"
	"soda/sodal"
)

// Message is one item read from a port.
type Message struct {
	// From identifies the writer.
	From soda.MID
	// Priority is the REQUEST argument (0 for plain ports).
	Priority int32
	// Data is the written payload.
	Data []byte
}

// Handler consumes one port message (the "Port_Op" of §4.2.1).
type Handler func(c *soda.Client, msg Message)

// InputPort returns a server program implementing a FIFO input port bound
// to pattern. queueCap bounds the number of waiting writers; when it fills
// the handler CLOSEs, pushing back on the requesters' kernels (§4.2.1).
func InputPort(pattern soda.Pattern, queueCap int, op Handler) soda.Program {
	return portProgram(pattern, queueCap, false, op)
}

// PriorityPort is InputPort with priority scheduling: the entry with the
// highest REQUEST argument is accepted first.
func PriorityPort(pattern soda.Pattern, queueCap int, op Handler) soda.Program {
	return portProgram(pattern, queueCap, true, op)
}

// entry is one queued write request.
type entry struct {
	ev  soda.Event
	seq uint64 // arrival order; stabilizes the priority heap
}

// entryHeap orders by descending priority, then arrival order.
type entryHeap []entry

func (h entryHeap) Len() int { return len(h) }

func (h entryHeap) Less(i, j int) bool {
	if h[i].ev.Arg != h[j].ev.Arg {
		return h[i].ev.Arg > h[j].ev.Arg
	}
	return h[i].seq < h[j].seq
}

func (h entryHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *entryHeap) Push(x any) { *h = append(*h, x.(entry)) }

func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// portState is the per-instance server state.
type portState struct {
	fifo   *sodal.Queue[entry]
	prio   entryHeap
	byPrio bool
	seq    uint64
	cap    int
}

func (s *portState) size() int {
	if s.byPrio {
		return len(s.prio)
	}
	return s.fifo.Len()
}

func (s *portState) push(ev soda.Event) {
	s.seq++
	e := entry{ev: ev, seq: s.seq}
	if s.byPrio {
		heap.Push(&s.prio, e)
		return
	}
	s.fifo.EnQueue(e)
}

func (s *portState) pop() entry {
	if s.byPrio {
		return heap.Pop(&s.prio).(entry)
	}
	return s.fifo.MustDeQueue()
}

func portProgram(pattern soda.Pattern, queueCap int, byPrio bool, op Handler) soda.Program {
	if queueCap <= 0 {
		queueCap = 16
	}
	return soda.Program{
		Init: func(c *soda.Client, _ soda.MID) {
			c.SetStash(&portState{
				fifo:   sodal.NewQueue[entry](queueCap),
				byPrio: byPrio,
				cap:    queueCap,
			})
			if err := c.Advertise(pattern); err != nil {
				panic(err)
			}
		},
		Handler: func(c *soda.Client, ev soda.Event) {
			if ev.Kind != soda.EventRequestArrival || ev.Pattern != pattern {
				return
			}
			st := c.Stash().(*portState)
			st.push(ev)
			if st.size() >= st.cap {
				c.Close() // no room: push back on writers (§4.2.1)
			}
		},
		Task: func(c *soda.Client) {
			st := c.Stash().(*portState)
			for {
				c.WaitUntil(func() bool { return st.size() > 0 })
				e := st.pop()
				c.Open() // room again (deferred no-op if already open)
				res := c.AcceptPut(e.ev.Asker, soda.OK, e.ev.PutSize)
				if res.Status != soda.AcceptSuccess {
					continue // writer crashed or cancelled; drop
				}
				op(c, Message{From: e.ev.Asker.MID, Priority: e.ev.Arg, Data: res.Data})
			}
		},
	}
}

// Write sends data to a port, blocking until the reader has taken it
// (writers on a bufferless port cannot run ahead of the reader, §4.2.1).
func Write(c *soda.Client, port soda.ServerSig, data []byte) soda.Status {
	return c.BPut(port, soda.OK, data).Status
}

// WritePriority is Write with an explicit priority.
func WritePriority(c *soda.Client, port soda.ServerSig, priority int32, data []byte) soda.Status {
	return c.BPut(port, priority, data).Status
}

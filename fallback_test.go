package soda

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestParallelFallbackWarning pins the degradation contract: asking for
// parallel execution on a network that cannot shard (no topology, a flat
// topology, or one without a lookahead bound) must run sequentially, warn
// exactly once on the warning stream, and record the verdict in ParStats —
// never degrade silently.
func TestParallelFallbackWarning(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"flat network", nil},
		{"single segment", []Option{WithTopology(Topology{Segments: 1})}},
		{"zero forward delay", []Option{WithTopology(StarTopology(2))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			old := warnOutput
			warnOutput = &buf
			defer func() { warnOutput = old }()
			nw := NewNetwork(append([]Option{WithParallelSim(4)}, tc.opts...)...)
			want := fmt.Sprintf(parFallbackWarning, 4)
			if got := buf.String(); got != want {
				t.Fatalf("warning = %q, want %q", got, want)
			}
			if nw.coord != nil {
				t.Fatal("coordinator built despite unusable parallelism")
			}
			st := nw.ParStats()
			if !st.FallbackSequential || st.Workers != 4 {
				t.Fatalf("ParStats = %+v, want FallbackSequential with Workers=4", st)
			}
		})
	}
}

// TestParallelFallbackRunsIdentically proves the degraded run is the plain
// sequential run, not an approximation: same trace bytes as a network built
// without WithParallelSim at all.
func TestParallelFallbackRunsIdentically(t *testing.T) {
	run := func(opts ...Option) string {
		old := warnOutput
		warnOutput = &bytes.Buffer{}
		defer func() { warnOutput = old }()
		nw := NewNetwork(opts...)
		var trace bytes.Buffer
		nw.Trace(&trace)
		nw.Register("server", Program{
			Init: func(c *Client, _ MID) { c.Advertise(WellKnownPattern(7)) },
			Handler: func(c *Client, ev Event) {
				if ev.Kind == EventRequestArrival {
					c.AcceptCurrentExchange(OK, []byte("pong"), ev.PutSize)
				}
			},
		})
		nw.Register("client", Program{
			Task: func(c *Client) {
				if srv, ok := c.Discover(WellKnownPattern(7)); ok {
					c.BExchange(srv, OK, []byte("ping"), 16)
				}
			},
		})
		nw.MustAddNode(1)
		nw.MustAddNode(2)
		nw.MustBoot(1, "server")
		nw.MustBoot(2, "client")
		if err := nw.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		return trace.String()
	}
	plain := run()
	degraded := run(WithParallelSim(8))
	if plain != degraded {
		t.Fatal("degraded parallel run diverged from the sequential run")
	}
	if !strings.Contains(plain, "->") {
		t.Fatalf("trace empty or malformed; comparison proved nothing:\n%s", plain)
	}
}

// TestParallelNoSilentStats pins that a usable parallel configuration does
// NOT set the fallback flag (guarding against the inverse bug).
func TestParallelNoSilentStats(t *testing.T) {
	topo := StarTopology(2)
	topo.ForwardDelay = time.Millisecond
	var buf bytes.Buffer
	old := warnOutput
	warnOutput = &buf
	defer func() { warnOutput = old }()
	nw := NewNetwork(WithTopology(topo), WithParallelSim(2))
	if buf.Len() != 0 {
		t.Fatalf("unexpected warning: %q", buf.String())
	}
	if nw.coord == nil {
		t.Fatal("no coordinator on a shardable network")
	}
	if st := nw.ParStats(); st.FallbackSequential || st.Workers != 2 {
		t.Fatalf("ParStats = %+v, want live coordinator stats with Workers=2", st)
	}
}

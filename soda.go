// Package soda is a faithful reproduction of SODA — the Simplified
// Operating System for Distributed Applications of Kepecs & Solomon
// (University of Wisconsin–Madison, 1984) — as a deterministic,
// virtual-time simulation.
//
// A SODA network is a set of nodes on a broadcast bus. Each node pairs a
// kernel processor (the SODA communications adaptor) with one uniprogrammed
// client processor. The kernel provides exactly ten primitives — REQUEST,
// ACCEPT, CANCEL, ADVERTISE, UNADVERTISE, GETUNIQUEID, OPEN, CLOSE,
// ENDHANDLER, DIE — plus broadcast DISCOVER and kernel-interpreted boot,
// load and kill patterns.
//
// Quick start:
//
//	nw := soda.NewNetwork()
//	nw.Register("server", soda.Program{
//		Init: func(c *soda.Client, _ soda.MID) { c.Advertise(pattern) },
//		Handler: func(c *soda.Client, ev soda.Event) {
//			if ev.Kind == soda.EventRequestArrival {
//				c.AcceptCurrentExchange(soda.OK, []byte("hi"), ev.PutSize)
//			}
//		},
//	})
//	nw.Register("client", soda.Program{
//		Task: func(c *soda.Client) {
//			srv, _ := c.Discover(pattern)
//			res := c.BExchange(srv, soda.OK, []byte("hello"), 64)
//			fmt.Println(res.Status, string(res.Data))
//		},
//	})
//	nw.MustAddNode(1)
//	nw.MustAddNode(2)
//	nw.MustBoot(1, "server")
//	nw.MustBoot(2, "client")
//	nw.Run(5 * time.Second) // five seconds of virtual time
//
// Everything — bus contention, the Delta-t reliability protocol,
// retransmission, probing, crashes and reboots — runs under a seeded
// discrete-event scheduler, so every run is exactly reproducible.
package soda

import (
	"fmt"
	"io"
	"os"
	"time"

	"soda/faults"
	"soda/internal/bus"
	"soda/internal/core"
	"soda/internal/deltat"
	"soda/internal/frame"
	"soda/internal/internet"
	"soda/internal/netx"
	"soda/internal/sim"
	"soda/internal/wire"
	"soda/obs"
)

// Re-exported fundamental types. See the internal packages for full
// documentation; the aliases keep one public import path.
type (
	// MID is a network-wide unique machine id.
	MID = frame.MID
	// Pattern is a 48-bit service name.
	Pattern = frame.Pattern
	// TID is a per-machine unique transaction id.
	TID = frame.TID
	// ServerSig addresses a service: ⟨MID, PATTERN⟩.
	ServerSig = frame.ServerSig
	// RequesterSig identifies a request: ⟨MID, TID⟩.
	RequesterSig = frame.RequesterSig
	// Client is the uniprogrammed client process API.
	Client = core.Client
	// Program is the Init/Handler/Task triple loaded onto a node.
	Program = core.Program
	// Event is a handler invocation's tag.
	Event = core.Event
	// Status is a request completion status.
	Status = core.Status
	// AcceptStatus is an ACCEPT outcome.
	AcceptStatus = core.AcceptStatus
	// CallResult is a blocking request's outcome.
	CallResult = core.CallResult
	// AcceptResult is an ACCEPT's outcome.
	AcceptResult = core.AcceptResult
	// Node is one SODA machine (kernel + optional client).
	Node = core.Node
	// Config parameterizes a node's kernel.
	Config = core.Config
	// BusStats counts frames on the broadcast medium.
	BusStats = bus.Stats
	// Topology describes a segmented internetwork (see WithTopology).
	Topology = internet.Topology
	// GatewaySpec declares one gateway and the segments it bridges.
	GatewaySpec = internet.GatewaySpec
	// InternetStats counts gateway-layer work on a segmented network.
	InternetStats = internet.Stats
	// ParStats counts the parallel scheduler's deterministic work (see
	// WithParallelSim and Network.ParStats).
	ParStats = sim.ParStats
	// PatternTableFullError reports a saturated 256-slot pattern table.
	PatternTableFullError = core.PatternTableFullError
)

// Re-exported constants and values.
const (
	// BroadcastMID addresses every kernel (DISCOVER).
	BroadcastMID = frame.BroadcastMID
	// OK is the default request/accept argument.
	OK = core.OK

	EventRequestArrival    = core.EventRequestArrival
	EventRequestCompletion = core.EventRequestCompletion

	StatusSuccess      = core.StatusSuccess
	StatusCancelled    = core.StatusCancelled
	StatusCrashed      = core.StatusCrashed
	StatusUnadvertised = core.StatusUnadvertised
	StatusRejected     = core.StatusRejected

	AcceptSuccess   = core.AcceptSuccess
	AcceptCancelled = core.AcceptCancelled
	AcceptCrashed   = core.AcceptCrashed
)

// Reserved patterns bound at SODA creation time.
var (
	// BootPattern marks a free, bootable machine.
	BootPattern = core.DefaultBootPattern
	// KillPattern terminates a client regardless of handler state.
	KillPattern = core.DefaultKillPattern
)

// WellKnownPattern builds a published pattern from a 46-bit value.
func WellKnownPattern(v uint64) Pattern { return frame.WellKnownPattern(v) }

// StarTopology is a hub-and-spoke internetwork: segment 0 is the backbone
// and one gateway bridges each other segment to it, so any cross-segment
// path takes at most two gateway hops.
func StarTopology(segments int) Topology { return internet.Star(segments) }

// LineTopology is a chain internetwork: gateway i bridges segments i and
// i+1 (the longest path crosses segments-1 gateways).
func LineTopology(segments int) Topology { return internet.Line(segments) }

// DefaultNodeConfig returns the per-node kernel configuration calibrated to
// the thesis's implementation (§5.5); tweak and pass via WithNodeConfig.
func DefaultNodeConfig() Config { return core.DefaultConfig() }

// BootRemote boots a registered program on a free machine (§3.5.2); the
// returned load pattern is the kill capability over the child.
func BootRemote(c *Client, target MID, bootPat Pattern, progName string) (Pattern, error) {
	return core.BootRemote(c, target, bootPat, progName)
}

// BootRemoteWithParams is BootRemote with a connector-style parameter
// block appended to the core image (§4.3.1); the booted client reads it
// back with Client.BootParams.
func BootRemoteWithParams(c *Client, target MID, bootPat Pattern, progName string, params []byte) (Pattern, error) {
	return core.BootRemoteWithParams(c, target, bootPat, progName, params)
}

// KillChild terminates a child booted with BootRemote.
func KillChild(c *Client, target MID, loadPat Pattern) bool {
	return core.KillChild(c, target, loadPat)
}

// KernelPeek reads from a node's kernel-level RMR region (§6.17.2; enable
// with Config.KernelRMRSize). The status is StatusRejected on bad addresses
// and StatusUnadvertised when the service is disabled at the destination.
func KernelPeek(c *Client, dst MID, addr, size int) ([]byte, Status) {
	return core.KernelPeek(c, dst, addr, size)
}

// KernelPoke writes into a node's kernel-level RMR region (§6.17.2).
func KernelPoke(c *Client, dst MID, addr int, value []byte) Status {
	return core.KernelPoke(c, dst, addr, value)
}

// Option configures a Network.
type Option interface{ apply(*options) }

type options struct {
	seed       int64
	busCfg     bus.Config
	nodeCfg    core.Config
	eventCap   uint64
	plan       *faults.Plan
	invariants bool
	tracer     *obs.Tracer
	metrics    *obs.Registry
	topo       *internet.Topology
	parWorkers int
	parShuffle int64
	sockListen string
	sockPeers  map[MID]string
	sockTap    func(raw []byte)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithSeed sets the deterministic random seed (default 1).
func WithSeed(seed int64) Option {
	return optionFunc(func(o *options) { o.seed = seed })
}

// WithLoss sets the per-receiver frame loss probability, exercising the
// Delta-t retransmission machinery.
func WithLoss(p float64) Option {
	return optionFunc(func(o *options) { o.busCfg.LossProb = p })
}

// WithPipelined selects the pipelined (input-buffer) kernel variant for all
// nodes (§5.2.3).
func WithPipelined(on bool) Option {
	return optionFunc(func(o *options) { o.nodeCfg.Pipelined = on })
}

// WithTransportWindow sets the Delta-t transport's sliding-window depth in
// messages (DESIGN.md §11). Values <= 1 keep the paper-faithful
// alternating-bit stop-and-wait transport, bit-identical to the default;
// values > 1 enable fragmentation and pipelining of reliable messages for
// bulk throughput. Order with care: WithNodeConfig replaces the whole node
// configuration, including this field.
func WithTransportWindow(w int) Option {
	return optionFunc(func(o *options) { o.nodeCfg.Transport.Window = w })
}

// Recovery modes for WithTransportRecovery (DESIGN.md §12). Selective is
// the default: SACK-driven hole repair with an AIMD congestion window.
// GoBackN restores the original discard-and-replay recovery.
const (
	RecoverySelective = deltat.RecoverySelective
	RecoveryGoBackN   = deltat.RecoveryGoBackN
)

// WithTransportRecovery selects the windowed transport's loss-recovery
// strategy (DESIGN.md §12). Only meaningful with WithTransportWindow > 1;
// the stop-and-wait transport has no fragments to recover. Order with
// care: WithNodeConfig replaces the whole node configuration, including
// this field.
func WithTransportRecovery(m deltat.RecoveryMode) Option {
	return optionFunc(func(o *options) { o.nodeCfg.Transport.Recovery = m })
}

// WithTopology splits the network into t.Segments bus segments joined by
// store-and-forward gateways (DESIGN.md §13). Nodes land on the segment
// t.Locate maps them to; unicast frames cross segments through routed
// gateway hops, broadcasts flood a spanning tree, and DISCOVER queries are
// answered from the gateways' pattern directory unless t.NoDiscoverCache.
// A topology of 0 or 1 segments is the default single shared bus, whose
// wire behavior stays byte-identical to a network built without this
// option.
func WithTopology(t Topology) Option {
	return optionFunc(func(o *options) { o.topo = &t })
}

// WithParallelSim asks the scheduler to execute bus segments in parallel,
// with at most workers segments running concurrently (DESIGN.md §15). It is
// a pure wall-clock optimization: a parallel run is byte-identical to the
// sequential run — same trace output, same observer streams and profiles,
// same invariant verdicts, same random draws — because cross-segment events
// are bounded below by the topology's ForwardDelay (the conservative
// lookahead) and every globally sequenced side effect is committed in
// canonical order. Requires a WithTopology internetwork of at least two
// segments with a positive ForwardDelay; otherwise the network runs
// sequentially, warns once on stderr, and sets
// ParStats.FallbackSequential. workers <= 1 is plain sequential execution.
func WithParallelSim(workers int) Option {
	return optionFunc(func(o *options) { o.parWorkers = workers })
}

// WithParallelShuffle perturbs the order parallel window jobs are handed to
// workers, from the given seed (0 = natural order). Outputs are
// interleaving-independent, so this exists for determinism testing: runs
// with different shuffle seeds must stay byte-identical, and divergence
// indicates a commit-order race. No effect without WithParallelSim.
func WithParallelShuffle(seed int64) Option {
	return optionFunc(func(o *options) { o.parShuffle = seed })
}

// WithSocketTransport replaces the simulated broadcast bus with a real
// TCP transport (DESIGN.md §16): the network listens for peer connections
// on listen (use "127.0.0.1:0" for an ephemeral port and read the bound
// address back with SocketAddr), and virtual time is pinned to the wall
// clock by a real-time driver instead of the discrete-event scheduler.
// The kernel, Delta-t transport, and frame codec are unchanged — only the
// medium underneath them is real.
//
// A socket network runs differently from a simulated one:
//
//   - Peers are point-to-point TCP streams, declared with WithSocketPeers
//     or SetSocketPeer; broadcast (DISCOVER) fans out over every declared
//     peer plus local loopback.
//   - Run(d) runs the network for d of wall-clock time. For event-driven
//     completion use StartSocket / WaitSocket / WaitSocketIdle, then
//     CloseSocket.
//   - Runs are NOT deterministic. Observable equivalence with the sim
//     backend is cross-checked by the conformance harness (conformance/).
//
// WithSocketTransport is incompatible with WithTopology, WithParallelSim,
// WithFaultPlan and WithLoss (the real wire provides its own loss);
// NewNetwork panics on such combinations.
func WithSocketTransport(listen string) Option {
	return optionFunc(func(o *options) { o.sockListen = listen })
}

// WithSocketPeers declares the MID -> "host:port" address map of a socket
// network's peers (see WithSocketTransport). Peers may also be added
// after creation with SetSocketPeer, once their ephemeral addresses are
// known.
func WithSocketPeers(peers map[MID]string) Option {
	return optionFunc(func(o *options) {
		if o.sockPeers == nil {
			o.sockPeers = make(map[MID]string, len(peers))
		}
		for mid, addr := range peers {
			o.sockPeers[mid] = addr
		}
	})
}

// WithSocketFrameTap observes every raw transport frame delivered by a
// socket network, before decoding (fuzz-corpus capture; nil disables).
// The tap runs on the driver goroutine.
func WithSocketFrameTap(tap func(raw []byte)) Option {
	return optionFunc(func(o *options) { o.sockTap = tap })
}

// WithNodeConfig replaces the whole per-node configuration.
func WithNodeConfig(cfg Config) Option {
	return optionFunc(func(o *options) { o.nodeCfg = cfg })
}

// WithBusConfig replaces the medium configuration.
func WithBusConfig(cfg bus.Config) Option {
	return optionFunc(func(o *options) { o.busCfg = cfg })
}

// WithEventLimit caps total simulation events (a livelock backstop).
func WithEventLimit(n uint64) Option {
	return optionFunc(func(o *options) { o.eventCap = n })
}

// WithFaultPlan injects a fault schedule into the run: window events shape
// the medium via the bus fault model, and crash/reboot events drive node
// lifecycle on the virtual clock. The plan is validated at NewNetwork time
// (panicking on a malformed plan, like an impossible topology would).
func WithFaultPlan(p faults.Plan) Option {
	return optionFunc(func(o *options) { o.plan = &p })
}

// WithInvariantChecks attaches a faults.Checker to every node's observer
// stream and the bus delivery tap for the whole run; read the verdict with
// Network.Invariants after the run settles.
func WithInvariantChecks() Option {
	return optionFunc(func(o *options) { o.invariants = true })
}

// WithTracer attaches an obs.Tracer to the run: it consumes every node's
// kernel observer stream, every transport endpoint's protocol event stream,
// and the bus delivery tap, assembling one causal span per REQUEST. Export
// with Tracer.WriteChromeTrace after the run. Attaching a tracer never
// changes behavior: all streams are synchronous observation, and a run
// without one builds no events at all.
func WithTracer(t *obs.Tracer) Option {
	return optionFunc(func(o *options) { o.tracer = t })
}

// WithMetrics attaches an obs.Registry to the run: per-primitive latency
// histograms and per-node protocol counters, fed from the same streams as
// WithTracer. Read it after the run (Registry.WriteSummary, or
// Network.Profile for the exportable form).
func WithMetrics(r *obs.Registry) Option {
	return optionFunc(func(o *options) { o.metrics = r })
}

// Network is a simulated SODA network: the virtual clock, the broadcast
// bus (or the bus segments of a WithTopology internetwork), the program
// registry, and the set of nodes.
type Network struct {
	k *sim.Kernel
	// coord drives conservative parallel execution (WithParallelSim); nil on
	// a sequential network. When set, k is the coordinator's global kernel.
	coord *sim.Coordinator
	// parStats records the fallback verdict when parallelism was requested
	// but unusable (coord == nil); with a coordinator, ParStats() reads live
	// counters from it instead.
	parStats sim.ParStats
	// b is the single shared bus; nil when the network is segmented.
	b *bus.Bus
	// buses lists every bus segment ([b] on a single-segment network).
	buses []*bus.Bus
	// nx is the real TCP transport (WithSocketTransport); nil on a
	// simulated network. When set, b, buses and inet are all nil.
	nx      *netx.Network
	inet    *internet.Internet
	reg     core.Registry
	cfg     core.Config
	nodes   map[MID]*core.Node
	checker *faults.Checker
	tracer  *obs.Tracer
	metrics *obs.Registry
	// userObs and userTObs hold the raw WithNodeConfig observers on a
	// parallel network, where composition is deferred to AddNode (each node
	// buffers through its own shard kernel).
	userObs  func(core.ObsEvent)
	userTObs func(deltat.Event)
}

// warnOutput receives setup-time configuration warnings; a variable so
// tests can capture them.
var warnOutput io.Writer = os.Stderr

// parFallbackWarning is the WithParallelSim degradation notice (pinned by
// TestParallelFallbackWarning).
const parFallbackWarning = "soda: WithParallelSim(%d) needs a multi-segment WithTopology with a positive ForwardDelay; running sequentially\n"

// NewNetwork creates an empty network.
func NewNetwork(opts ...Option) *Network {
	o := options{
		seed:     1,
		busCfg:   bus.DefaultConfig(),
		nodeCfg:  core.DefaultConfig(),
		eventCap: 50_000_000,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	useParallel := o.parWorkers > 1 && o.topo != nil && o.topo.Segments > 1 && o.topo.ForwardDelay > 0
	nw := &Network{
		reg:   core.Registry{},
		cfg:   o.nodeCfg,
		nodes: make(map[MID]*core.Node),
	}
	if o.sockListen != "" {
		switch {
		case o.topo != nil:
			panic("soda: WithSocketTransport is incompatible with WithTopology")
		case o.parWorkers > 1:
			panic("soda: WithSocketTransport is incompatible with WithParallelSim")
		case o.plan != nil:
			panic("soda: WithSocketTransport is incompatible with WithFaultPlan")
		case o.busCfg.LossProb != 0:
			panic("soda: WithSocketTransport is incompatible with WithLoss (the real wire provides its own loss)")
		}
		k := sim.New(o.seed)
		k.SetEventLimit(o.eventCap)
		nw.k = k
		nx, err := netx.New(k, netx.Config{
			Listen:   o.sockListen,
			Peers:    o.sockPeers,
			FrameTap: o.sockTap,
		})
		if err != nil {
			panic(fmt.Sprintf("soda: %v", err))
		}
		nw.nx = nx
	} else if useParallel {
		c := sim.NewCoordinator(o.seed, o.topo.Segments, o.parWorkers, o.topo.ForwardDelay)
		c.SetEventLimit(o.eventCap)
		if o.parShuffle != 0 {
			c.SetShuffle(o.parShuffle)
		}
		nw.coord = c
		nw.k = c.Global()
		in, err := internet.NewSharded(c.Shards(), o.busCfg, *o.topo)
		if err != nil {
			panic(fmt.Sprintf("soda: %v", err))
		}
		nw.inet = in
		for s := 0; s < in.Segments(); s++ {
			nw.buses = append(nw.buses, in.Bus(s))
		}
	} else {
		k := sim.New(o.seed)
		k.SetEventLimit(o.eventCap)
		nw.k = k
		if o.parWorkers > 1 {
			fmt.Fprintf(warnOutput, parFallbackWarning, o.parWorkers)
			nw.parStats = sim.ParStats{Workers: o.parWorkers, FallbackSequential: true}
		}
		if o.topo != nil && o.topo.Segments > 1 {
			in, err := internet.New(k, o.busCfg, *o.topo)
			if err != nil {
				panic(fmt.Sprintf("soda: %v", err))
			}
			nw.inet = in
			for s := 0; s < in.Segments(); s++ {
				nw.buses = append(nw.buses, in.Bus(s))
			}
		} else {
			nw.b = bus.New(k, o.busCfg)
			nw.buses = []*bus.Bus{nw.b}
		}
	}
	if o.invariants {
		nw.checker = faults.NewChecker()
		for s, b := range nw.buses {
			b.AddDeliveryTap(nw.bufferedDeliveryTap(s, nw.checker.ObserveDelivery))
		}
	}
	nw.tracer = o.tracer
	nw.metrics = o.metrics
	if nw.tracer != nil {
		for s, b := range nw.buses {
			b.AddDeliveryTap(nw.bufferedDeliveryTap(s, nw.tracer.ObserveDelivery))
		}
	}

	if nw.coord != nil {
		// Parallel network: observer composition is per-node (AddNode), so
		// each node buffers its emissions through its own shard kernel. Only
		// the raw user hooks are recorded here.
		nw.userObs = nw.cfg.Observer
		nw.cfg.Observer = nil
		nw.userTObs = nw.cfg.Transport.Observer
		nw.cfg.Transport.Observer = nil
		nw.armPlan(o.plan)
		return nw
	}

	// Fan the single kernel observer hook out to every attached consumer.
	// A user observer set via WithNodeConfig runs first (it predates the
	// obs layer), then the invariant checker, tracer, and metrics. With no
	// consumers the hook stays nil, so nodes build no events at all.
	coreObs := make([]func(core.ObsEvent), 0, 5)
	if nw.cfg.Observer != nil {
		coreObs = append(coreObs, nw.cfg.Observer)
	}
	if nw.inet != nil {
		// The internetwork's pattern directory follows the observer
		// stream's advertise/crash events (the DISCOVER cache coherence
		// contract, DESIGN.md §13).
		coreObs = append(coreObs, nw.inet.Observe)
	}
	if nw.checker != nil {
		coreObs = append(coreObs, nw.checker.Observe)
	}
	if nw.tracer != nil {
		coreObs = append(coreObs, nw.tracer.Observe)
	}
	if nw.metrics != nil {
		coreObs = append(coreObs, nw.metrics.Observe)
	}
	switch len(coreObs) {
	case 0:
		nw.cfg.Observer = nil
	case 1:
		nw.cfg.Observer = coreObs[0]
	default:
		nw.cfg.Observer = func(ev core.ObsEvent) {
			for _, f := range coreObs {
				f(ev)
			}
		}
	}

	// Same fan-out for the transport observer hook.
	tObs := make([]func(deltat.Event), 0, 3)
	if nw.cfg.Transport.Observer != nil {
		tObs = append(tObs, nw.cfg.Transport.Observer)
	}
	if nw.tracer != nil {
		tObs = append(tObs, nw.tracer.ObserveTransport)
	}
	if nw.metrics != nil {
		tObs = append(tObs, nw.metrics.ObserveTransport)
	}
	switch len(tObs) {
	case 0:
		nw.cfg.Transport.Observer = nil
	case 1:
		nw.cfg.Transport.Observer = tObs[0]
	default:
		nw.cfg.Transport.Observer = func(ev deltat.Event) {
			for _, f := range tObs {
				f(ev)
			}
		}
	}
	nw.armPlan(o.plan)
	return nw
}

// armPlan installs a fault plan: window events become each segment's fault
// model, gateway chaos lands on the global kernel (it spans segments, so it
// must run in exclusive steps under the parallel scheduler), and node
// crash/reboot events are routed to the kernel owning the target's segment.
func (nw *Network) armPlan(plan *faults.Plan) {
	if plan == nil {
		return
	}
	inj, err := faults.NewInjector(nw.k, *plan)
	if err != nil {
		panic(fmt.Sprintf("soda: %v", err))
	}
	if nw.inet != nil {
		for s, b := range nw.buses {
			if nw.coord != nil {
				// Fault-model random draws happen on the segment's shard
				// during windows; routing them through that shard's kernel
				// keeps them on the run's canonical random stream.
				b.SetFaultModel(inj.ForSegmentOn(s, nw.coord.Shard(s)))
			} else {
				b.SetFaultModel(inj.ForSegment(s))
			}
		}
		inj.ArmGateways(nw.inet)
	} else {
		nw.b.SetFaultModel(inj)
	}
	if nw.coord != nil {
		inj.ArmRouted(nodeControl{nw}, func(mid MID) *sim.Kernel {
			if s := nw.inet.SegmentOf(mid); s >= 0 {
				return nw.coord.Shard(s)
			}
			return nw.k
		})
		return
	}
	inj.Arm(nodeControl{nw})
}

// bufferedDeliveryTap adapts a delivery-tap consumer for segment s: under
// the parallel scheduler its events are buffered on the owning shard kernel
// and replayed in canonical commit order at the window barrier; on a
// sequential network it is the consumer itself.
func (nw *Network) bufferedDeliveryTap(s int, tap func(bus.DeliveryEvent)) func(bus.DeliveryEvent) {
	if nw.coord == nil {
		return tap
	}
	k := nw.coord.Shard(s)
	return func(e bus.DeliveryEvent) { k.Buffer(func() { tap(e) }) }
}

// parObserver builds one node's kernel-observer hook on a parallel network.
// Directory kinds apply to the internetwork immediately, under the order
// gate — a DISCOVER proxied later in the same window must see them — while
// every other consumer's delivery is buffered for canonical-order replay at
// the window barrier, reproducing the sequential event order exactly.
func (nw *Network) parObserver(k *sim.Kernel) func(core.ObsEvent) {
	buffered := make([]func(core.ObsEvent), 0, 4)
	if nw.userObs != nil {
		buffered = append(buffered, nw.userObs)
	}
	if nw.checker != nil {
		buffered = append(buffered, nw.checker.Observe)
	}
	if nw.tracer != nil {
		buffered = append(buffered, nw.tracer.Observe)
	}
	if nw.metrics != nil {
		buffered = append(buffered, nw.metrics.Observe)
	}
	inet := nw.inet
	return func(ev core.ObsEvent) {
		switch ev.Kind {
		case core.ObsAdvertise, core.ObsUnadvertise, core.ObsCrash, core.ObsDie:
			k.Gated(func() { inet.Observe(ev) })
		}
		if len(buffered) == 0 {
			return
		}
		k.Buffer(func() {
			for _, f := range buffered {
				f(ev)
			}
		})
	}
}

// parTransportObserver is parObserver's counterpart for the transport
// event stream (which has no directory consumer, so everything buffers).
func (nw *Network) parTransportObserver(k *sim.Kernel) func(deltat.Event) {
	buffered := make([]func(deltat.Event), 0, 3)
	if nw.userTObs != nil {
		buffered = append(buffered, nw.userTObs)
	}
	if nw.tracer != nil {
		buffered = append(buffered, nw.tracer.ObserveTransport)
	}
	if nw.metrics != nil {
		buffered = append(buffered, nw.metrics.ObserveTransport)
	}
	if len(buffered) == 0 {
		return nil
	}
	return func(ev deltat.Event) {
		k.Buffer(func() {
			for _, f := range buffered {
				f(ev)
			}
		})
	}
}

// nodeControl adapts the network to the fault injector's crash/reboot
// schedule. Targets are resolved at fire time; unknown machines no-op.
type nodeControl struct{ nw *Network }

func (c nodeControl) Crash(mid MID) {
	if n := c.nw.nodes[mid]; n != nil {
		n.Crash()
	}
}

func (c nodeControl) Reboot(mid MID, program string) {
	n := c.nw.nodes[mid]
	if n == nil {
		return
	}
	n.Reboot(func() {
		if program != "" {
			// Boot failures (e.g. an unregistered program in the plan)
			// leave the node free and bootable, matching a bad ROM image.
			_ = n.Boot(program, 0)
		}
	})
}

// Invariants returns the invariant checker installed by
// WithInvariantChecks, or nil. Read it after the run: Finish() lists
// violations, Unresolved() lists stuck requests.
func (nw *Network) Invariants() *faults.Checker { return nw.checker }

// Tracer returns the tracer installed by WithTracer, or nil.
func (nw *Network) Tracer() *obs.Tracer { return nw.tracer }

// Metrics returns the metrics registry installed by WithMetrics, or nil.
func (nw *Network) Metrics() *obs.Registry { return nw.metrics }

// Profile builds an exportable run profile (latency digests, per-node
// counters, bus counters) from the attached metrics registry; nil when the
// network was built without WithMetrics.
func (nw *Network) Profile(scenario string) *obs.Profile {
	if nw.metrics == nil {
		return nil
	}
	p := nw.metrics.Profile(scenario, nw.Now())
	p.Bus = obs.BusCountersFrom(nw.Stats())
	return p
}

// Register adds a bootable program under name.
func (nw *Network) Register(name string, prog Program) { nw.reg[name] = prog }

// AddNode attaches a free SODA machine at mid. On a segmented network the
// node lands on the segment Topology.Locate maps it to.
func (nw *Network) AddNode(mid MID) (*Node, error) {
	b := nw.b
	k := nw.k
	cfg := nw.cfg
	if nw.inet != nil {
		if mid >= internet.GatewayMIDBase {
			return nil, fmt.Errorf("soda: MID %d collides with the gateway range (>= %d)", mid, internet.GatewayMIDBase)
		}
		var err error
		if b, err = nw.inet.BusFor(mid); err != nil {
			return nil, err
		}
		if nw.coord != nil {
			// The node schedules on the kernel owning its segment, and its
			// observer hooks buffer (or gate) through that same kernel.
			k = nw.coord.Shard(nw.inet.SegmentOf(mid))
			cfg.Observer = nw.parObserver(k)
			cfg.Transport.Observer = nw.parTransportObserver(k)
		}
	}
	var w wire.Network
	if nw.nx != nil {
		w = nw.nx
	} else {
		w = b.Wire()
	}
	n, err := core.NewNode(k, w, mid, cfg, nw.reg)
	if err != nil {
		return nil, err
	}
	nw.nodes[mid] = n
	return n, nil
}

// MustAddNode is AddNode, panicking on error (setup-time convenience).
func (nw *Network) MustAddNode(mid MID) *Node {
	n, err := nw.AddNode(mid)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns the node at mid, or nil.
func (nw *Network) Node(mid MID) *Node { return nw.nodes[mid] }

// Boot starts a registered program on the node at mid (local boot).
func (nw *Network) Boot(mid MID, prog string) error {
	n, ok := nw.nodes[mid]
	if !ok {
		return fmt.Errorf("soda: no node %d", mid)
	}
	return n.Boot(prog, 0)
}

// MustBoot is Boot, panicking on error.
func (nw *Network) MustBoot(mid MID, prog string) {
	if err := nw.Boot(mid, prog); err != nil {
		panic(err)
	}
}

// Run advances the simulation by d of virtual time. On a socket-transport
// network this is d of wall-clock time: the real-time driver is started if
// needed and the call blocks until the deadline passes.
func (nw *Network) Run(d time.Duration) error {
	if nw.nx != nil {
		return nw.nx.RunFor(d)
	}
	if nw.coord != nil {
		return nw.coord.RunUntil(nw.k.Now() + d)
	}
	return nw.k.RunUntil(nw.k.Now() + d)
}

// RunToCompletion processes events until none remain. It returns an error
// if client processes are deadlocked (suspended with no pending events).
// Undefined on a socket-transport network (peers keep the event queue
// alive); use StartSocket with a completion predicate instead.
func (nw *Network) RunToCompletion() error {
	if nw.nx != nil {
		return fmt.Errorf("soda: RunToCompletion is undefined on a socket-transport network; use StartSocket/WaitSocket")
	}
	if nw.coord != nil {
		return nw.coord.Run()
	}
	return nw.k.Run()
}

// ParStats reports the parallel scheduler's deterministic counters: the
// zero value on a plain sequential network, FallbackSequential (with the
// requested worker count) when WithParallelSim degraded, and live window /
// staging / gate counters when the coordinator is driving the run.
func (nw *Network) ParStats() ParStats {
	if nw.coord != nil {
		return nw.coord.Stats()
	}
	return nw.parStats
}

// Now reports the current virtual time.
func (nw *Network) Now() time.Duration { return nw.k.Now() }

// At schedules fn at an absolute virtual time (testing and fault
// injection: crash a node mid-run, etc.).
func (nw *Network) At(t time.Duration, fn func()) { nw.k.At(t, fn) }

// Trace writes one line per frame transmission to w (nil disables): the
// virtual timestamp, source, destination and transport kind. On a
// segmented network each line is prefixed with the segment it was heard
// on (a relayed frame appears once per segment it crosses, with the
// gateway as its wire-level source). Intended for debugging protocol
// flows; the output is deterministic.
func (nw *Network) Trace(w io.Writer) {
	if nw.nx != nil {
		// The real wire has no deterministic tap; use WithSocketFrameTap
		// for raw frame observation.
		return
	}
	if w == nil {
		for _, b := range nw.buses {
			b.SetTap(nil)
		}
		return
	}
	line := func(prefix string, e bus.TapEvent) {
		dst := fmt.Sprintf("%d", e.Dst)
		if e.Dst == BroadcastMID {
			dst = "broadcast"
		}
		fmt.Fprintf(w, "%s%12v  %3d -> %-9s %-6v %4dB\n", prefix, e.At, e.Src, dst, e.Kind, e.Size)
	}
	if nw.inet == nil {
		nw.b.SetTap(func(e bus.TapEvent) { line("", e) })
		return
	}
	for s, b := range nw.buses {
		prefix := fmt.Sprintf("s%d ", s)
		if nw.coord != nil {
			// Buffer trace lines on the owning shard so the file interleaves
			// in canonical commit order, byte-identical to a sequential run.
			k := nw.coord.Shard(s)
			b.SetTap(func(e bus.TapEvent) { k.Buffer(func() { line(prefix, e) }) })
			continue
		}
		b.SetTap(func(e bus.TapEvent) { line(prefix, e) })
	}
}

// Stats returns the bus traffic counters; on a segmented network, the sum
// over every segment.
func (nw *Network) Stats() BusStats {
	if nw.nx != nil {
		return nw.nx.Stats()
	}
	if nw.inet == nil {
		return nw.b.Stats()
	}
	var agg BusStats
	for _, b := range nw.buses {
		agg.Add(b.Stats())
	}
	return agg
}

// ResetStats zeroes the bus counters — every segment's, and the gateway
// layer's — for measurement windows.
func (nw *Network) ResetStats() {
	if nw.nx != nil {
		nw.nx.ResetStats()
		return
	}
	for _, b := range nw.buses {
		b.ResetStats()
	}
	if nw.inet != nil {
		nw.inet.ResetStats()
	}
}

// Segments reports the number of bus segments (1 without WithTopology).
func (nw *Network) Segments() int {
	if nw.inet == nil {
		return 1
	}
	return nw.inet.Segments()
}

// SegmentOf reports a node MID's home segment (always 0 without
// WithTopology; -1 for MIDs the topology cannot locate).
func (nw *Network) SegmentOf(mid MID) int {
	if nw.inet == nil {
		return 0
	}
	return nw.inet.SegmentOf(mid)
}

// InternetStats returns the gateway-layer counters (forwards, TTL drops,
// DISCOVER cache traffic); zero without WithTopology.
func (nw *Network) InternetStats() InternetStats {
	if nw.inet == nil {
		return InternetStats{}
	}
	return nw.inet.Stats()
}

// TransportConfig exposes the Delta-t parameters in effect (for tests that
// reason about timing bounds).
func (nw *Network) TransportConfig() deltat.Config { return nw.cfg.Transport }

// socket returns the TCP transport, panicking on a simulated network (the
// Socket* methods are programmer errors there, like MustAddNode's panic).
func (nw *Network) socket(method string) *netx.Network {
	if nw.nx == nil {
		panic("soda: " + method + " requires WithSocketTransport")
	}
	return nw.nx
}

// SocketAddr reports the bound listen address of a socket-transport
// network ("127.0.0.1:54321" after listening on "127.0.0.1:0").
func (nw *Network) SocketAddr() string { return nw.socket("SocketAddr").Addr() }

// SetSocketPeer maps a peer MID to its "host:port" address, connecting
// lazily on first send (and redialing on failure). Used to wire ephemeral
// addresses after every process has bound its listener.
func (nw *Network) SetSocketPeer(mid MID, addr string) {
	nw.socket("SetSocketPeer").SetPeer(mid, addr)
}

// StartSocket launches the real-time driver of a socket-transport
// network: virtual time 0 is pinned to the wall clock at the call. done,
// when non-nil, is polled between events on the driver goroutine — it may
// read kernel-owned node state — and parks the driver once it reports
// true. Idempotent.
func (nw *Network) StartSocket(done func() bool) { nw.socket("StartSocket").Start(done) }

// WaitSocket blocks until the driver parks (done predicate satisfied or
// CloseSocket), or max elapses; it reports whether the driver parked.
// After a true return, kernel-owned state is safe to read from the caller.
func (nw *Network) WaitSocket(max time.Duration) bool {
	return nw.socket("WaitSocket").Wait(max)
}

// WaitSocketIdle blocks until the network has been quiescent — no frames
// moving, no timers firing — for settle, or until max elapses; it reports
// whether quiescence was reached. This is how a server-side harness knows
// its peers are done without a completion predicate of its own.
func (nw *Network) WaitSocketIdle(settle, max time.Duration) bool {
	return nw.socket("WaitSocketIdle").WaitIdle(settle, max)
}

// PostSocket schedules fn onto the socket network's driver goroutine in
// kernel context — the one safe way to read (or mutate) kernel-owned node
// state while the driver runs. It blocks until accepted and reports false
// if the network stops first; an accepted fn runs unless the driver exits
// before its turn.
func (nw *Network) PostSocket(fn func()) bool { return nw.socket("PostSocket").Post(fn) }

// SocketErr reports a driver fault (event-limit overrun), readable after
// WaitSocket/CloseSocket.
func (nw *Network) SocketErr() error { return nw.socket("SocketErr").Err() }

// CloseSocket stops the driver, closes the listener and every connection,
// and waits for all socket goroutines to drain. A non-nil error means a
// goroutine leaked past the drain timeout — tests treat that as a failure.
func (nw *Network) CloseSocket() error { return nw.socket("CloseSocket").Close() }
